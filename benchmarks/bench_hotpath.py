#!/usr/bin/env python
"""Hot-path benchmark: compiled flat core vs. object-graph enumeration.

Measures the enumeration phase of every any-k variant on fixed-seed
workloads, on both cores over the *same* bound T-DP:

* ``object`` — the object-graph reference path (``flat=False``);
* ``flat``   — the compiled flat core (the production default).

Per variant x query shape it records answers/sec, TTF (enumerator
creation to first answer, warm plan), TTL (creation to last requested
answer), and per-answer delay p50/p99 — and asserts the two cores
produce bit-identical ranked prefixes before trusting any number.

Results merge into ``BENCH_hotpath.json`` at the repo root (one section
per mode, ``full`` and ``smoke``), which is committed so every future
PR has a recorded perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full mode
    BENCH_SMOKE=1 python benchmarks/bench_hotpath.py           # CI-sized
    BENCH_SMOKE=1 BENCH_CHECK=1 python benchmarks/bench_hotpath.py
        # regression gate: fail (exit 1) if any variant's flat
        # answers/sec drops >30% vs the committed same-mode numbers
        # (override the tolerance with BENCH_TOLERANCE=0.4)
    BENCH_SMOKE=1 BENCH_CHECK=1 BENCH_ONLY_OBS=1 python benchmarks/bench_hotpath.py
        # observability lane: only the tracing-overhead section runs;
        # tracing-disabled throughput must stay within 2% of the
        # committed baseline — widened to the run's own measured noise
        # floor on loaded machines (BENCH_OBS_TOLERANCE to override the
        # 2%); the tracing-on overhead is recorded as an informational
        # row
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.anyk.base import make_enumerator  # noqa: E402
from repro.data.generators import uniform_database  # noqa: E402
from repro.dp.builder import build_tdp_for_query  # noqa: E402
from repro.dp.flat import compile_tdp  # noqa: E402
from repro.experiments.runner import percentile  # noqa: E402
from repro.query.builders import path_query, star_query  # noqa: E402
from repro.ranking.dioid import TROPICAL, LexicographicDioid  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CHECK = os.environ.get("BENCH_CHECK", "") not in ("", "0")
TOLERANCE = float(os.environ.get("BENCH_TOLERANCE", "0.30"))
#: Ceiling on the tracing-*disabled* overhead regression (see obs_gate).
OBS_TOLERANCE = float(os.environ.get("BENCH_OBS_TOLERANCE", "0.02"))
#: Run only the observability-overhead section; its result merges into
#: the committed mode dict without touching the hot-path cells.
ONLY_OBS = os.environ.get("BENCH_ONLY_OBS", "") not in ("", "0")
MODE = "smoke" if SMOKE else "full"
JSON_PATH = os.path.join(ROOT, "BENCH_hotpath.json")

VARIANTS = ["recursive", "take2", "lazy", "eager", "all"]
REPEATS = 3 if SMOKE else 5
#: Prefix length compared bit-exactly between the two cores per cell.
VERIFY_PREFIX = 200


def lex_lift(dioid: LexicographicDioid):
    """Lift scalar weights into per-relation lexicographic unit vectors."""
    def lift(atom, _values, raw_weight):
        position = int(atom.relation_name.lstrip("R")) - 1
        return dioid.unit_vector(position % dioid.dimensions, raw_weight)

    return lift


def workload_cells():
    """(cell name, tdp factory, k) triples — all seeds fixed."""
    if SMOKE:
        # Sized so one cell runs in seconds but per-run noise stays
        # well under the gate tolerance (sub-ms runs flap too much).
        specs = [
            ("4-path[tropical]", "path", 4, 1_000, 500, TROPICAL),
            ("4-star[tropical]", "star", 4, 800, 400, TROPICAL),
            ("4-path[lexicographic]", "path", 4, 500, 200, None),
        ]
    else:
        specs = [
            ("4-path[tropical]", "path", 4, 10_000, 500, TROPICAL),
            ("4-path-topk5000[tropical]", "path", 4, 10_000, 5_000, TROPICAL),
            ("4-path-full[tropical]", "path", 4, 800, None, TROPICAL),
            ("4-star[tropical]", "star", 4, 5_000, 500, TROPICAL),
            ("4-path[lexicographic]", "path", 4, 1_000, 300, None),
        ]
    for name, shape, size, n, k, dioid in specs:
        yield name, shape, size, n, k, dioid


def build_cell(shape: str, size: int, n: int, dioid):
    database = uniform_database(size, n, domain_size=max(2, n // 4), seed=93)
    query = path_query(size) if shape == "path" else star_query(size)
    lift = None
    if dioid is None:  # lexicographic fallback-parity cell
        dioid = LexicographicDioid(size)
        lift = lex_lift(dioid)
    t0 = time.perf_counter()
    tdp = build_tdp_for_query(database, query, dioid=dioid, lift=lift)
    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    compiled = compile_tdp(tdp)
    compile_seconds = time.perf_counter() - t0
    return tdp, compiled, build_seconds, compile_seconds


def run_once(tdp, algorithm: str, flat, k: int | None):
    """One warm enumeration run; returns (produced, ttf, ttl, delays)."""
    gc.collect()
    clock = time.perf_counter
    start = clock()
    enumerator = make_enumerator(tdp, algorithm, flat=flat)
    delays = []
    push_delay = delays.append
    previous = start
    produced = 0
    for _result in enumerator:
        now = clock()
        push_delay(now - previous)
        previous = now
        produced += 1
        if k is not None and produced >= k:
            break
    if not produced:
        raise RuntimeError(f"empty output for {algorithm}")
    return produced, delays[0], previous - start, delays


def measure_pair(tdp, algorithm: str, k: int | None) -> tuple[dict, dict]:
    """Median-of-``REPEATS`` metrics for (object, flat) on one variant.

    One untimed warm-up run per core, then the timed repeats strictly
    *interleaved* (object, flat, object, flat, ...) so slow CPU-state
    drift over a long benchmark session cancels out of the ratio
    instead of biasing whichever core ran last.
    """
    samples = {False: ([], [], [], []), None: ([], [], [], [])}
    produced = 0
    for flat in (False, None):
        run_once(tdp, algorithm, flat, k)  # warm-up, untimed
    for _ in range(REPEATS):
        for flat in (False, None):
            produced, ttf, ttl, delays = run_once(tdp, algorithm, flat, k)
            throughput, ttfs, ttls, pooled = samples[flat]
            throughput.append(produced / ttl)
            ttfs.append(ttf)
            ttls.append(ttl)
            pooled.extend(delays)

    def summarise(flat) -> dict:
        # Best-of-N (pytest-benchmark's convention: min time / max
        # rate): the fastest observed run reflects the code's true
        # cost, everything slower is scheduler/container noise.
        throughput, ttfs, ttls, pooled = samples[flat]
        return {
            "produced": produced,
            "answers_per_sec": round(max(throughput), 1),
            "answers_per_sec_median": round(statistics.median(throughput), 1),
            "ttf_ms": round(min(ttfs) * 1e3, 4),
            "ttl_ms": round(min(ttls) * 1e3, 3),
            "delay_p50_us": round(percentile(pooled, 50) * 1e6, 3),
            "delay_p99_us": round(percentile(pooled, 99) * 1e6, 3),
        }

    return summarise(False), summarise(None)


def signature(tdp, algorithm: str, flat, k: int):
    results = []
    for result in make_enumerator(tdp, algorithm, flat=flat):
        results.append((result.weight, result.key, result.states))
        if len(results) >= k:
            break
    return results


def run_benchmark() -> dict:
    cells = {}
    for name, shape, size, n, k, dioid in workload_cells():
        tdp, compiled, build_s, compile_s = build_cell(shape, size, n, dioid)
        verify_k = min(VERIFY_PREFIX, k or VERIFY_PREFIX)
        cell = {
            "shape": shape,
            "n": n,
            "k": k,
            "dioid": "lexicographic" if dioid is None else repr(tdp.dioid),
            "compiled": compiled is not None,
            "build_ms": round(build_s * 1e3, 2),
            "compile_ms": round(compile_s * 1e3, 2),
            "variants": {},
        }
        print(f"== {name}  (n={n}, k={k or 'all'}, "
              f"build {cell['build_ms']} ms, compile {cell['compile_ms']} ms)")
        for algorithm in VARIANTS:
            # Bit-identical prefix gate before any timing is trusted.
            flat_sig = signature(tdp, algorithm, None, verify_k)
            object_sig = signature(tdp, algorithm, False, verify_k)
            assert flat_sig == object_sig, (
                f"flat/object divergence: {name} {algorithm}"
            )
            object_metrics, flat_metrics = measure_pair(tdp, algorithm, k)
            speedup = round(
                flat_metrics["answers_per_sec"]
                / object_metrics["answers_per_sec"],
                2,
            )
            ttf_ratio = round(
                flat_metrics["ttf_ms"] / object_metrics["ttf_ms"], 3
            ) if object_metrics["ttf_ms"] else None
            cell["variants"][algorithm] = {
                "object": object_metrics,
                "flat": flat_metrics,
                "speedup_answers_per_sec": speedup,
                "ttf_ratio_flat_vs_object": ttf_ratio,
            }
            print(
                f"  {algorithm:>10}: object {object_metrics['answers_per_sec']:>10.0f}/s"
                f"  flat {flat_metrics['answers_per_sec']:>10.0f}/s"
                f"  speedup {speedup:>5.2f}x"
                f"  ttf {object_metrics['ttf_ms']:.2f}->"
                f"{flat_metrics['ttf_ms']:.2f} ms"
                f"  delay p99 {object_metrics['delay_p99_us']:.0f}->"
                f"{flat_metrics['delay_p99_us']:.0f} us"
            )
        cells[name] = cell
    return {
        "python": sys.version.split()[0],
        "repeats": REPEATS,
        "cells": cells,
    }


def run_coldstart() -> dict:
    """Warm-start-by-mmap vs cold rebuild on the 4-path SQLite workload.

    Cold = fresh backend + engine with persistence off: prepare, bind
    (T-DP build + flat compile), first answer.  Warm = fresh backend +
    engine over an already-written ``<db>.core``: the bind maps the
    compiled arrays and skips the build entirely.  Both repeat with a
    brand-new engine each time (best-of), so neither side benefits from
    in-process caches — this is the cross-process serving-boot path.
    """
    import shutil
    import tempfile

    from repro.data.backend import SQLiteBackend
    from repro.engine import Engine

    n = 8_000 if SMOKE else 20_000
    size = 4
    tmp = tempfile.mkdtemp(prefix="bench_coldstart_")
    path = os.path.join(tmp, "coldstart.db")
    try:
        database = uniform_database(size, n, domain_size=max(2, n // 4), seed=93)
        backend = SQLiteBackend(path)
        for relation in database.relations.values():
            backend.ingest(relation)
        backend.close()
        query = path_query(size)

        def first_answer(core_cache: str) -> float:
            gc.collect()
            start = time.perf_counter()
            engine = Engine.from_backend(
                SQLiteBackend(path), core_cache=core_cache
            )
            prepared = engine.prepare(query, algorithm="take2")
            result = prepared.first()
            elapsed = time.perf_counter() - start
            assert result is not None
            engine.close()
            return elapsed

        cold = [first_answer("off") for _ in range(REPEATS)]
        # Write the core once, then time warm binds against it.
        write_engine = Engine.from_backend(SQLiteBackend(path))
        write_engine.prepare(query, algorithm="take2").bind()
        assert write_engine.stats.core_writes == 1
        write_engine.close()
        warm = [first_answer("auto") for _ in range(REPEATS)]
        # The timed warm runs must actually have hit the core file.
        check = Engine.from_backend(SQLiteBackend(path))
        check.prepare(query, algorithm="take2").bind()
        assert check.stats.core_hits == 1
        core_bytes = os.path.getsize(path + ".core")
        check.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    cold_ms = round(min(cold) * 1e3, 3)
    warm_ms = round(min(warm) * 1e3, 3)
    speedup = round(cold_ms / warm_ms, 2) if warm_ms else None
    print(
        f"== coldstart 4-path sqlite (n={n}): rebuild TTF {cold_ms} ms, "
        f"mmap warm TTF {warm_ms} ms, {speedup}x"
    )
    return {
        "shape": "path",
        "n": n,
        "core_file_bytes": core_bytes,
        "rebuild_ttf_ms": cold_ms,
        "mmap_warm_ttf_ms": warm_ms,
        "speedup_ttf": speedup,
    }


def coldstart_gate(coldstart: dict) -> list[str]:
    """Warm-start TTF must stay >=5x below the cold-rebuild TTF."""
    cold = coldstart["rebuild_ttf_ms"]
    warm = coldstart["mmap_warm_ttf_ms"]
    if warm * 5.0 > cold:
        return [
            f"coldstart: mmap warm TTF {warm} ms is not >=5x below the "
            f"rebuild TTF {cold} ms ({coldstart['speedup_ttf']}x)"
        ]
    return []


def run_obs_overhead() -> dict:
    """Tracing overhead on the serving enumeration path (4-path, take2).

    Three arms drain the same bound T-DP, strictly interleaved per
    round and summarised best-of-``REPEATS``:

    * ``direct`` — the bare flat enumerator (no obs code anywhere);
    * ``off``    — :class:`PrefixStream` in 64-answer slices with the
      shared ``NULL_TRACER`` (the production default: what every fetch
      pays when tracing is disabled);
    * ``on``     — the same stream under an always-sampling tracer
      (recorded as an informational row, not gated).

    The ``off``/``direct`` ratio is the machine-neutral signal: both
    arms run back to back in the same round, so a slow CI runner
    depresses them together while a real instrumentation regression
    drags only the ``off`` arm down.  The ratio is therefore *paired
    per round* (never an off-max over a direct-max from different
    rounds), and the spread of the direct arm across rounds is reported
    as ``direct_noise_floor`` — the run's own measure of how much the
    machine wobbles, which :func:`obs_gate` uses to keep the 2% ceiling
    from flaking on loaded runners.  Before any timing is trusted the
    ``off`` and ``on`` arms must produce bit-identical ranked prefixes.
    """
    from repro.engine.stream import PrefixStream
    from repro.obs.trace import NULL_TRACER, Tracer

    n = 1_000 if SMOKE else 4_000
    k = 20_000 if SMOKE else 50_000
    slice_size = 64
    tdp, compiled, _build_s, _compile_s = build_cell("path", 4, n, TROPICAL)
    assert compiled is not None

    def factory(counter):
        return make_enumerator(tdp, "take2", flat=None, counter=counter)

    def drain_direct() -> float:
        gc.collect()
        start = time.perf_counter()
        produced = 0
        for _result in make_enumerator(tdp, "take2", flat=None):
            produced += 1
            if produced >= k:
                break
        elapsed = time.perf_counter() - start
        assert produced == k, f"output smaller than k={k}"
        return k / elapsed

    def drain_stream(tracer) -> float:
        gc.collect()
        stream = PrefixStream(factory, tracer=tracer)
        start = time.perf_counter()
        for target in range(slice_size, k + 1, slice_size):
            stream.ensure(target)
        available = stream.ensure(k)
        elapsed = time.perf_counter() - start
        assert available == k, f"output smaller than k={k}"
        return k / elapsed

    # Bit-identity gate: tracing must not perturb the ranked output.
    verify = min(k, VERIFY_PREFIX)
    off_stream = PrefixStream(factory, tracer=NULL_TRACER)
    on_stream = PrefixStream(factory, tracer=Tracer(sample="always"))
    off_sig = [
        (r.weight, r.key, r.states) for r in off_stream.prefix(verify)
    ]
    on_sig = [(r.weight, r.key, r.states) for r in on_stream.prefix(verify)]
    assert off_sig == on_sig, "tracing on/off ranked-prefix divergence"

    arms = {"direct": [], "off": [], "on": []}
    probe = Tracer(sample="always")
    drain_direct()  # warm-up round, untimed
    drain_stream(NULL_TRACER)
    drain_stream(probe)
    probe.clear()
    rounds = REPEATS + 2
    for _ in range(rounds):
        arms["direct"].append(drain_direct())
        arms["off"].append(drain_stream(NULL_TRACER))
        arms["on"].append(drain_stream(probe))
    direct = max(arms["direct"])
    off = max(arms["off"])
    on = max(arms["on"])
    paired = [o / d for o, d in zip(arms["off"], arms["direct"])]
    noise = round(1.0 - min(arms["direct"]) / max(arms["direct"]), 4)
    result = {
        "shape": "path",
        "n": n,
        "k": k,
        "slice_size": slice_size,
        "rounds": rounds,
        "direct_answers_per_sec": round(direct, 1),
        "off_answers_per_sec": round(off, 1),
        "on_answers_per_sec": round(on, 1),
        "off_vs_direct_ratio": round(max(paired), 4),
        "off_vs_direct_ratio_median": round(statistics.median(paired), 4),
        "direct_noise_floor": noise,
        "tracing_on_overhead_pct": round((1.0 - on / off) * 100.0, 2),
        "spans_recorded": probe.recorded,
    }
    print(
        f"== obs overhead 4-path take2 (n={n}, k={k}): "
        f"direct {direct:,.0f}/s  off {off:,.0f}/s "
        f"(paired ratio {result['off_vs_direct_ratio']}, "
        f"noise floor {noise * 100:.1f}%)  on {on:,.0f}/s "
        f"(tracing-on overhead {result['tracing_on_overhead_pct']}%, "
        f"informational)"
    )
    return result


def obs_gate(previous: dict, current_obs: dict) -> list[str]:
    """Tracing-disabled throughput must stay within OBS_TOLERANCE.

    Same dual-signal shape as :func:`regression_gate`: fail only when
    the absolute tracing-off answers/sec *and* the paired off/direct
    ratio both regress beyond tolerance vs the committed numbers.  The
    ceiling is ``OBS_TOLERANCE`` (2%) on a quiet machine, but wall-clock
    ratios on shared CI runners wobble far more than 2% with zero code
    change — so the effective tolerance widens to the larger of the
    committed and current runs' measured ``direct_noise_floor`` (the
    direct arm re-times identical code every round; its spread is pure
    machine noise).  A genuine NULL_TRACER regression moves the paired
    ratio beyond what the direct arm's own wobble can explain.  The
    tracing-on arm is informational and never gated.
    """
    old = previous.get("modes", {}).get(MODE, {}).get("obs_overhead")
    if not old:
        return []
    tolerance = max(
        OBS_TOLERANCE,
        old.get("direct_noise_floor") or 0.0,
        current_obs.get("direct_noise_floor") or 0.0,
    )
    baseline = old["off_answers_per_sec"]
    now = current_obs["off_answers_per_sec"]
    absolute_regressed = now < baseline * (1.0 - tolerance)
    old_ratio = old.get("off_vs_direct_ratio") or 0.0
    new_ratio = current_obs.get("off_vs_direct_ratio") or 0.0
    ratio_regressed = new_ratio < old_ratio * (1.0 - tolerance)
    if absolute_regressed and ratio_regressed:
        return [
            f"obs-overhead: tracing-off {now:.0f}/s vs committed "
            f"{baseline:.0f}/s (-{(1 - now / baseline) * 100:.1f}%) and "
            f"off/direct ratio {new_ratio:.4f} vs committed "
            f"{old_ratio:.4f} (effective tolerance "
            f"{tolerance * 100:.1f}%)"
        ]
    return []


def regression_gate(previous: dict, current: dict) -> list[str]:
    """Flat answers/sec must not regress > TOLERANCE vs committed numbers.

    A variant fails only when *both* signals regress beyond tolerance:

    * absolute flat ``answers_per_sec`` vs the committed baseline, and
    * the flat/object speedup ratio vs the committed ratio.

    The ratio is measured against the object core *in the same run*, so
    it is machine-neutral: a CI runner that is simply slower than the
    machine that recorded the baseline depresses both cores equally and
    keeps the ratio intact, while a genuine flat-core regression drags
    the absolute number *and* the ratio down together.
    """
    failures = []
    old_cells = previous.get("modes", {}).get(MODE, {}).get("cells", {})
    for cell_name, cell in current["cells"].items():
        old_cell = old_cells.get(cell_name)
        if not old_cell:
            continue
        for variant, data in cell["variants"].items():
            old = old_cell.get("variants", {}).get(variant)
            if not old:
                continue
            baseline = old["flat"]["answers_per_sec"]
            now = data["flat"]["answers_per_sec"]
            absolute_regressed = now < baseline * (1.0 - TOLERANCE)
            old_ratio = old.get("speedup_answers_per_sec") or 0.0
            new_ratio = data.get("speedup_answers_per_sec") or 0.0
            ratio_regressed = new_ratio < old_ratio * (1.0 - TOLERANCE)
            if absolute_regressed and ratio_regressed:
                failures.append(
                    f"{cell_name}/{variant}: flat {now:.0f}/s vs committed "
                    f"{baseline:.0f}/s (-{(1 - now / baseline) * 100:.0f}%) "
                    f"and speedup {new_ratio:.2f}x vs committed "
                    f"{old_ratio:.2f}x (tolerance {TOLERANCE * 100:.0f}%)"
                )
    return failures


def main() -> int:
    previous = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            previous = json.load(handle)

    if ONLY_OBS:
        # CI's obs-smoke lane: rerun only the overhead section and fold
        # it into the committed mode dict, leaving the hot-path cells
        # and coldstart rows exactly as recorded.
        current = dict(previous.get("modes", {}).get(MODE, {}))
        current.setdefault("python", sys.version.split()[0])
        current["obs_overhead"] = run_obs_overhead()
        failures = obs_gate(previous, current["obs_overhead"]) if CHECK else []
    else:
        current = run_benchmark()
        # Top-level in the mode dict (NOT under cells: the regression
        # gate iterates cell["variants"], which these rows do not have).
        current["coldstart"] = run_coldstart()
        current["obs_overhead"] = run_obs_overhead()

        failures = []
        if CHECK:
            failures = regression_gate(previous, current)
            failures += coldstart_gate(current["coldstart"])
            failures += obs_gate(previous, current["obs_overhead"])

    merged = {"benchmark": "hotpath", "modes": previous.get("modes", {})}
    merged["modes"][MODE] = current
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {JSON_PATH} ({MODE} mode)")

    headline = (
        current.get("cells", {}).get("4-path[tropical]", {}).get("variants", {})
    )
    for variant in ("recursive", "take2"):
        if variant in headline:
            print(
                f"headline 4-path {variant}: "
                f"{headline[variant]['speedup_answers_per_sec']}x"
            )

    if failures:
        print("\nPERF REGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if CHECK:
        if ONLY_OBS:
            print("obs overhead gate passed "
                  f"(tolerance {OBS_TOLERANCE * 100:.0f}% "
                  "or the measured noise floor)")
        else:
            print("perf regression gate passed "
                  f"(tolerance {TOLERANCE * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
