"""Fig 19 / Section 9.1.3: Rank-Join's computational sub-optimality.

On database I2 under max-plus ranking, the top answer combines the
lightest R and S tuples with the single heavy T tuple.  Weight-ordered
Rank-Join must buffer all (n-1)² R-S combinations before its threshold
lets the top answer out; any-k pays linear preprocessing.  Both the
wall-clock TTF and the counted joined-combinations are reported.
"""

import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.generators import rank_join_hard_instance
from repro.experiments.runner import measure_ttk
from repro.joins.rank_join import rank_join_enumerate
from repro.query.parser import parse_query
from repro.ranking.dioid import MAX_PLUS
from repro.util.counters import OpCounter

FIGURE = "fig19"
SIZES = [100, 200, 400]
QUERY_TEXT = "Q(a, b, c) :- R(a, b), S(b, c), T(c)"


@pytest.mark.parametrize("n", SIZES)
def test_rank_join_ttf(benchmark, n):
    db = rank_join_hard_instance(n)
    query = parse_query(QUERY_TEXT)

    def job():
        counter = OpCounter()
        start = time.perf_counter()
        stream = rank_join_enumerate(db, query, counter=counter)
        weight, _assignment = next(stream)
        return time.perf_counter() - start, weight, counter

    elapsed, weight, counter = pedantic(benchmark, job)
    assert weight == 1.0 + 10.0 + 1000.0 * n
    assert counter.intermediate_tuples >= (n - 1) ** 2
    benchmark.extra_info["combos"] = counter.intermediate_tuples
    record_result(
        FIGURE,
        f"n={n:>4} {'RankJoin':>8}: TTF={elapsed * 1e3:9.2f} ms  "
        f"buffered combinations={counter.intermediate_tuples} "
        f"(>= (n-1)^2 = {(n - 1) ** 2})",
    )


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ["take2", "lazy"])
def test_anyk_ttf(benchmark, n, algorithm):
    db = rank_join_hard_instance(n)
    query = parse_query(QUERY_TEXT)

    def job():
        return measure_ttk(db, query, algorithm, k=1, dioid=MAX_PLUS)

    result = pedantic(benchmark, job)
    assert result.produced == 1
    benchmark.extra_info["ttf_ms"] = round(result.ttf * 1e3, 3)
    record_result(
        FIGURE,
        f"n={n:>4} {algorithm:>8}: TTF={result.ttf * 1e3:9.2f} ms "
        f"(linear preprocessing)",
    )
