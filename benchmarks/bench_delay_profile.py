"""Delay-distribution profile: the Fig 5 Delay(k) column, measured.

The paper bounds the *worst-case* delay per algorithm (O(log k + l) for
Take2/Eager, + log n for Lazy, + l*n for All, l*log n for Recursive).
This bench records per-result delays over the first k results of a
4-path and reports median / p99 / max per algorithm — the distribution
view that a single mean hides.  Expected shape: All's tail blows up
(its O(l*n) insertions land on unlucky results), Recursive's tail
carries the chain-of-next-calls factor, Take2/Eager/Lazy stay tight.
"""

import time

import pytest

from benchmarks.conftest import ANYK_ALGORITHMS, cached_workload, pedantic, record_result
from repro.anyk.base import make_enumerator
from repro.data.generators import uniform_database
from repro.dp.builder import build_tdp_for_query
from repro.query.builders import path_query

FIGURE = "delay_profile"
K = 5_000


def _workload():
    from repro.experiments.workloads import Workload

    db = uniform_database(4, 8_000, seed=55)
    return Workload("delay/4-path", db, path_query(4), K)


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
def test_delay_distribution(benchmark, algorithm):
    workload = cached_workload(f"{FIGURE}/wl", _workload)

    def job():
        tdp = build_tdp_for_query(workload.database, workload.query)
        enum = make_enumerator(tdp, algorithm)
        iterator = iter(enum)
        delays = []
        previous = time.perf_counter()
        for _ in range(K):
            next(iterator)
            now = time.perf_counter()
            delays.append(now - previous)
            previous = now
        return delays

    delays = pedantic(benchmark, job)
    delays_sorted = sorted(delays)
    median = _percentile(delays_sorted, 0.50)
    p99 = _percentile(delays_sorted, 0.99)
    worst = delays_sorted[-1]
    benchmark.extra_info["median_us"] = round(median * 1e6, 2)
    benchmark.extra_info["p99_us"] = round(p99 * 1e6, 2)
    record_result(
        FIGURE,
        f"{algorithm:>10}: delay median={median * 1e6:8.2f} us  "
        f"p99={p99 * 1e6:8.2f} us  max={worst * 1e6:9.2f} us  "
        f"(first {K} results)",
    )
