"""Design-choice ablations called out in DESIGN.md.

1. **Group fast path vs monoid fallback** (Section 6.2): on tree queries
   the anyK-part candidate weights can be derived in O(1) with an
   inverse or recomputed from open-branch minima in O(l) — measure the
   gap on a star (worst case for the fallback) and on a path (where the
   fallback is free).
2. **Connector sharing** (Fig 3): the O(l*n) equi-join encoding vs
   private per-parent choice sets (the O(n²)-ish naive encoding):
   construction cost and enumeration cost on skewed data.
"""

import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.anyk.partition import AnyKPart
from repro.anyk.strategies import Take2Strategy
from repro.data.generators import uniform_database
from repro.dp.builder import build_tdp
from repro.query.builders import path_query, star_query
from repro.query.jointree import build_join_tree

FIGURE = "ablations"


@pytest.mark.parametrize("shape", ["star", "path"])
@pytest.mark.parametrize("use_inverse", [True, False],
                         ids=["group", "monoid"])
def test_inverse_ablation(benchmark, shape, use_inverse):
    size = 4
    db = uniform_database(size, 4_000, seed=31)
    query = star_query(size) if shape == "star" else path_query(size)
    k = 2_000

    def job():
        start = time.perf_counter()
        tree = build_join_tree(query)
        tdp = build_tdp(db, tree)
        enum = AnyKPart(tdp, strategy=Take2Strategy(), use_inverse=use_inverse)
        enum.top(k)
        return time.perf_counter() - start

    elapsed = pedantic(benchmark, job)
    mode = "group O(1)" if use_inverse else "monoid O(l)"
    record_result(
        FIGURE,
        f"inverse/{shape:<5} {mode:>12}: TT({k})={elapsed:7.3f} s",
    )


@pytest.mark.parametrize("share", [True, False], ids=["shared", "private"])
def test_connector_sharing_ablation(benchmark, share):
    # Skewed data: few join values -> large shared groups; the naive
    # encoding copies each group once per parent tuple.
    n = 3_000
    db = uniform_database(2, n, domain_size=30, seed=37)
    query = path_query(2)
    k = 1_000

    def job():
        start = time.perf_counter()
        tree = build_join_tree(query)
        tdp = build_tdp(db, tree, share_connectors=share)
        enum = AnyKPart(tdp, strategy=Take2Strategy())
        enum.top(k)
        return time.perf_counter() - start, tdp.num_connectors

    elapsed, connectors = pedantic(benchmark, job)
    benchmark.extra_info["connectors"] = connectors
    record_result(
        FIGURE,
        f"connectors/{'shared' if share else 'private':<8}: "
        f"TT({k})={elapsed:7.3f} s  choice-sets={connectors}",
    )
