"""Fig 12 (a-h): TT(k) for 3-star and 6-star queries.

Stars are the extreme shallow T-DP case: Recursive degenerates to an
anyK-part-like algorithm (no suffix chains to share), so Eager/Lazy
should take TTL here while Lazy keeps the small-k crown.
"""

import pytest

from benchmarks.conftest import (
    ANYK_ALGORITHMS,
    WITH_BATCH,
    cached_workload,
    run_ttk_benchmark,
)
from repro.experiments.workloads import (
    bitcoin,
    synthetic_large,
    synthetic_small,
    twitter,
)

FIGURE = "fig12"
SIZES = [3, 6]


@pytest.mark.parametrize("algorithm", WITH_BATCH)
@pytest.mark.parametrize("size", SIZES)
def test_synthetic_small_ttl(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/star{size}-small", lambda: synthetic_small("star", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_synthetic_large_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/star{size}-large", lambda: synthetic_large("star", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_bitcoin_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/star{size}-bitcoin", lambda: bitcoin("star", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_twitter_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/star{size}-twitter", lambda: twitter("star", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)
