"""Fig 9: the dataset-statistics table (nodes, edges, max/avg degree).

Generates the synthetic stand-ins for Bitcoin OTC and the Twitter
samples and prints their statistics next to the published numbers.
Bitcoin and TwitterS are generated at full published scale; TwitterL is
scaled down 10x (2.25M edges is out of pure-Python budget) with the
scale factor recorded in the report.
"""

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.graphs import bitcoin_otc_like, graph_statistics, twitter_like

FIGURE = "fig09"

#: (name, builder, published (nodes, edges, max_degree, avg_degree))
DATASETS = [
    (
        "Bitcoin",
        lambda: bitcoin_otc_like(),
        (5_881, 35_592, 1_298, 12.1),
    ),
    (
        "TwitterS",
        lambda: twitter_like(num_nodes=8_000, num_edges=87_687),
        (8_000, 87_687, 6_093, 21.9),
    ),
    (
        "TwitterL(1/10)",
        lambda: twitter_like(num_nodes=8_000, num_edges=225_030),
        (80_000, 2_250_298, 22_072, 56.3),
    ),
]


@pytest.mark.parametrize("name,builder,published", DATASETS,
                         ids=[d[0] for d in DATASETS])
def test_dataset_statistics(benchmark, name, builder, published):
    relation = pedantic(benchmark, builder)
    stats = graph_statistics(relation)
    benchmark.extra_info["nodes"] = stats["nodes"]
    benchmark.extra_info["edges"] = stats["edges"]
    benchmark.extra_info["max_degree"] = stats["max_degree"]
    record_result(
        FIGURE,
        f"{name:>14}: nodes={stats['nodes']:>7} edges={stats['edges']:>8} "
        f"max/avg degree={stats['max_degree']:>6}/{stats['avg_degree']:6.1f}  "
        f"(paper: {published[0]}/{published[1]}, "
        f"{published[2]}/{published[3]})",
    )
    # Degree skew must be heavy-tailed like the real networks.
    assert stats["max_degree"] > 10 * stats["avg_degree"]
