"""Benchmark suite: one module per paper figure/table (see DESIGN.md)."""
