"""Shared helpers for the benchmark suite (one module per paper figure).

Each benchmark regenerates one cell of a paper figure: a cold-start
ranked enumeration (preprocessing included, as in the paper's TT(k)
methodology) of one workload with one algorithm.  The pytest-benchmark
table then reads exactly like the paper's plots: for each workload,
which algorithm reaches k results (or the full output) first.

Workloads are built once per session (data generation is excluded from
the timed region, like the paper excludes loading).  The measured TTF
and result counts are attached as ``extra_info`` columns, and every
module also emits a plain-text report under ``benchmarks/results/``.
"""

from __future__ import annotations

import gc
import os
from typing import Callable

import pytest

from repro.engine import Engine
from repro.experiments.runner import TTKResult, measure_enumeration, measure_ttk
from repro.experiments.workloads import Workload
from repro.ranking.dioid import TROPICAL


def gc_setup():
    """Collect garbage *outside* the timed region (pedantic setup hook).

    Large allocations from neighbouring benchmarks (e.g. NPRR's full
    quadratic output) otherwise get collected inside someone else's
    single-round measurement.
    """
    gc.collect()


def pedantic(benchmark, job, rounds: int = 1):
    """benchmark.pedantic with the GC fence applied."""
    return benchmark.pedantic(job, setup=gc_setup, rounds=rounds, iterations=1)

#: Algorithms compared in the paper's Section 7 figures.
ANYK_ALGORITHMS = ["recursive", "take2", "lazy", "eager", "all"]
#: Batch joins the comparison only where the full output is feasible.
WITH_BATCH = ANYK_ALGORITHMS + ["batch"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_workload_cache: dict[str, Workload] = {}
#: One engine per workload: prepared plans are shared by all benchmark
#: cells over that workload (the serving-path reuse the engine enables).
_engine_cache: dict[int, Engine] = {}
#: (figure, workload-name) -> TTK results, for end-of-session charts.
_curves: dict[tuple[str, str], list[TTKResult]] = {}


def cached_workload(key: str, builder: Callable[[], Workload]) -> Workload:
    """Build each workload once per session (generation is untimed)."""
    workload = _workload_cache.get(key)
    if workload is None:
        workload = builder()
        _workload_cache[key] = workload
    return workload


def cached_engine(workload: Workload) -> Engine:
    """The session-shared engine for a workload's database."""
    engine = _engine_cache.get(id(workload.database))
    if engine is None:
        engine = Engine(workload.database)
        _engine_cache[id(workload.database)] = engine
    return engine


def record_result(figure: str, line: str) -> None:
    """Append a line to the figure's plain-text report."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{figure}.txt"), "a") as handle:
        handle.write(line + "\n")


def run_ttk_benchmark(
    benchmark,
    figure: str,
    workload: Workload,
    algorithm: str,
    dioid=TROPICAL,
    rounds: int = 1,
) -> TTKResult:
    """Benchmark one cold-start TT(k) run and record its curve.

    The timed job stays cold (the paper's methodology), but the two
    phases are now reported as *separate* JSON fields: ``preprocess_ms``
    (plan binding: join tree / decomposition + T-DP bottom-up) and
    ``enum_ms`` (enumeration only).  After the timed rounds, a warm run
    over the session-shared engine's :class:`PreparedQuery` records the
    served-path numbers (``warm_*``) — preprocessing there is ≈ 0
    because the prepared plan is reused.
    """

    def job() -> TTKResult:
        return measure_ttk(
            workload.database, workload.query, algorithm, workload.k,
            dioid=dioid,
        )

    result = pedantic(benchmark, job, rounds=rounds)
    benchmark.extra_info["workload"] = workload.name
    benchmark.extra_info["ttf_ms"] = round(result.ttf * 1e3, 2)
    benchmark.extra_info["produced"] = result.produced
    benchmark.extra_info["preprocess_ms"] = round(result.preprocess * 1e3, 3)
    benchmark.extra_info["enum_ms"] = round(result.enumeration * 1e3, 3)

    # Warm (prepared-plan) pass: enumeration-only delay, untimed by
    # pytest-benchmark but recorded alongside the cold numbers.
    engine = cached_engine(workload)
    prepared = engine.prepare(workload.query, dioid=dioid, algorithm=algorithm)
    warm = measure_enumeration(prepared, workload.k)
    benchmark.extra_info["warm_preprocess_ms"] = round(warm.preprocess * 1e3, 3)
    benchmark.extra_info["warm_ttf_ms"] = round(warm.ttf * 1e3, 3)
    benchmark.extra_info["warm_enum_ms"] = round(warm.enumeration * 1e3, 3)

    curve = "  ".join(f"({k}, {t:.3f}s)" for k, t in result.curve)
    record_result(
        figure,
        f"{workload.name:<24} {algorithm:>10}: TTF={result.ttf * 1e3:9.2f} ms  "
        f"TT({result.produced})={result.ttk:8.3f} s  "
        f"[pre={result.preprocess * 1e3:8.2f} ms  "
        f"enum={result.enumeration * 1e3:8.2f} ms  "
        f"warm TTF={warm.ttf * 1e3:7.2f} ms]  curve: {curve}",
    )
    _curves.setdefault((figure, workload.name), []).append(result)
    return result


@pytest.fixture(scope="session", autouse=True)
def fresh_reports():
    """Truncate old reports; append TT(k) charts at session end.

    Also sweeps stray ``*.core`` files (persisted compiled cores) left
    next to benchmark SQLite databases by interrupted runs, so a stale
    core can never warm-start a cell that is meant to measure a cold
    bind.
    """
    if os.path.isdir(RESULTS_DIR):
        for name in os.listdir(RESULTS_DIR):
            if name.endswith(".txt"):
                os.remove(os.path.join(RESULTS_DIR, name))
    bench_dir = os.path.dirname(__file__)
    for directory in (bench_dir, os.path.dirname(bench_dir)):
        for name in os.listdir(directory):
            if name.endswith(".core"):
                os.remove(os.path.join(directory, name))
    yield
    from repro.experiments.ascii import curve_chart

    for (figure, workload_name), results in sorted(_curves.items()):
        if len(results) < 2:
            continue
        record_result(figure, f"\n--- {workload_name} (#results vs seconds) ---")
        record_result(figure, curve_chart(results))
