"""Theorem 11 / Proposition 13: Recursive vs Batch for the full output.

On worst-case-output instances, Recursive reuses ranked suffixes across
solutions and produces the *entire sorted output* with O(|out| log n)
priority-queue work — asymptotically below the Ω(|out| log |out|)
comparisons of a batch sort.  The bench records both wall-clock TTL and
the counted priority-queue traffic vs the sort's comparison budget.

Reproduction note (see EXPERIMENTS.md): the asymptotic claim shows
clearly in the *operation counts*; pure-Python wall-clock is dominated
by per-result interpreter overhead, so the measured TTL gap is much
smaller than the paper's Java numbers (and can invert on small inputs) —
exactly the "latency benchmarks misleadingly slow" calibration caveat.
"""

import math

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.anyk.base import make_enumerator
from repro.data.generators import recursive_worst_case, uniform_database
from repro.dp.builder import build_tdp_for_query
from repro.experiments.runner import measure_full_enumeration, measure_ttk
from repro.experiments.workloads import Workload
from repro.query.builders import path_query
from repro.query.parser import parse_query
from repro.util.counters import OpCounter

FIGURE = "thm11"


def product_workload(n, width, k=None):
    db = recursive_worst_case(n, width)
    atoms = ", ".join(f"R{i}(v{i})" for i in range(1, width + 1))
    head = ", ".join(f"v{i}" for i in range(1, width + 1))
    query = parse_query(f"Q({head}) :- {atoms}")
    return Workload(f"product-{width}x{n}", db, query, k)


def path_workload(n, width, fanout=6):
    """A worst-case-ish path: large output with heavily shared suffixes."""
    db = uniform_database(width, n, domain_size=max(2, n // fanout), seed=41)
    return Workload(f"path-{width}x{n}", db, path_query(width), None)


@pytest.mark.parametrize(
    "workload_builder",
    [
        lambda: product_workload(40, 3),
        lambda: product_workload(15, 4),
        lambda: path_workload(1_000, 4),
    ],
    ids=["product-40^3", "product-15^4", "path-4x1000"],
)
@pytest.mark.parametrize("algorithm", ["recursive", "take2", "lazy", "batch"])
def test_full_sorted_output(benchmark, workload_builder, algorithm):
    workload = workload_builder()

    def job():
        return measure_full_enumeration(
            workload.database, workload.query, algorithm
        )

    result = pedantic(benchmark, job)
    record_result(
        FIGURE,
        f"{workload.name:<14} {algorithm:>10}: "
        f"TTL({result.produced})={result.ttk:7.3f} s",
    )


@pytest.mark.parametrize(
    "workload_builder",
    [lambda: product_workload(40, 3), lambda: path_workload(1_000, 4)],
    ids=["product-40^3", "path-4x1000"],
)
def test_pq_ops_vs_sort_comparisons(benchmark, workload_builder):
    """The Theorem 11 accounting itself: counted, not timed."""
    workload = workload_builder()

    def job():
        counter = OpCounter()
        tdp = build_tdp_for_query(workload.database, workload.query)
        enum = make_enumerator(tdp, "recursive", counter=counter)
        produced = sum(1 for _ in enum)
        return counter, produced

    counter, produced = pedantic(benchmark, job)
    sort_budget = produced * math.log2(max(2, produced))
    assert counter.total_pq_ops() < sort_budget
    record_result(
        FIGURE,
        f"{workload.name:<14} recursive PQ ops={counter.total_pq_ops():>9} "
        f"vs sort comparisons ~{int(sort_budget):>9} "
        f"(ratio {counter.total_pq_ops() / sort_budget:.2f})",
    )


@pytest.mark.parametrize("algorithm", ["recursive", "take2"])
def test_prop13_ttn_worst_case(benchmark, algorithm):
    """Fig 6 instance: TT(n) where Recursive is tight (Prop 13)."""
    n = 3_000
    workload = product_workload(n, 3, k=n)

    def job():
        return measure_ttk(
            workload.database, workload.query, algorithm, k=n
        )

    result = pedantic(benchmark, job)
    record_result(
        FIGURE,
        f"prop13 n={n} {algorithm:>10}: TT(n)={result.ttk:7.3f} s",
    )
