#!/usr/bin/env python
"""Parallel execution layer benchmark: preprocessing speedup + merge cost.

Measures, per storage backend, on the 4-path workload:

* **preprocessing** — serial bind (object T-DP build + flat compile, the
  unsharded path) vs the sharded bind at 1/2/4/8 fragments (the
  fragment builder's direct-to-compiled key-space lowering with shared
  lower stages; mode resolved by the sharder's ``auto`` policy for the
  recorded headline, plus informational ``thread``/``process`` pool
  timings at 4 shards);
* **enumeration** — TTF and answers/sec for a top-k run through the
  ranked k-way shard merge at each fragment count, vs the unsharded
  enumerator.

Every timed cell is gated by a bit-identity assertion first: the
sharded ranked prefix must equal the unsharded one exactly.

Results merge into ``BENCH_parallel.json`` at the repo root (committed,
one section per ``full``/``smoke`` mode).  The headline number is
``speedup_at_4`` on the SQLite backend — sharded bind at 4 fragments vs
the serial bind.  On a single-core host (like CI containers) that gain
comes from the fragment builder itself — bulk rowid-range scans, no
object-graph intermediate, lower stages built once — and the worker
pool modes add multi-core scaling on wider hosts; ``cpu_count`` is
recorded alongside so numbers are interpretable.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full
    BENCH_SMOKE=1 python benchmarks/bench_parallel.py             # CI-sized
    BENCH_SMOKE=1 BENCH_CHECK=1 python benchmarks/bench_parallel.py
        # regression gate: fail (exit 1) unless the SQLite 4-path
        # speedup_at_4 stays >= BENCH_MIN_SPEEDUP (default 1.5) and
        # within BENCH_TOLERANCE (default 30%) of the committed number
"""

from __future__ import annotations

import gc
import json
import os
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.data.backend import SQLiteBackend  # noqa: E402
from repro.data.generators import uniform_database  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.query.builders import path_query  # noqa: E402

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CHECK = os.environ.get("BENCH_CHECK", "") not in ("", "0")
TOLERANCE = float(os.environ.get("BENCH_TOLERANCE", "0.30"))
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "1.5"))
MODE = "smoke" if SMOKE else "full"
JSON_PATH = os.path.join(ROOT, "BENCH_parallel.json")

N = 2_500 if SMOKE else 20_000
TOP_K = 300 if SMOKE else 1_000
REPEATS = 3
SHARD_COUNTS = [1, 2, 4, 8]
#: Ranked prefix compared bit-exactly before any cell is timed.
VERIFY_PREFIX = 200

QUERY = path_query(4)


def signature(results, k):
    out = []
    for result in results:
        out.append(
            (result.weight, tuple(sorted(result.assignment.items())),
             result.witness_ids)
        )
        if len(out) >= k:
            break
    return out


def bind_once(database, shards=None, parallel="auto", core_cache="off"):
    """One cold bind on a fresh engine; returns (physical, seconds).

    Persistence is off by default: with ``core_cache="auto"`` the first
    bind would write a ``.core`` next to the SQLite file and every later
    "cold" bind would silently warm-start from it, corrupting the build
    measurements.  The warm-start path is measured explicitly (and only
    there is ``core_cache="auto"`` passed).
    """
    gc.collect()
    engine = Engine(database, core_cache=core_cache)
    start = time.perf_counter()
    if shards is None:
        prepared = engine.prepare(QUERY)
    else:
        prepared = engine.prepare(QUERY, shards=shards, shard_parallel=parallel)
    physical = prepared.bind()
    return physical, time.perf_counter() - start


def best_bind_ms(database, shards=None, parallel="auto", core_cache="off"):
    times = []
    for _ in range(REPEATS):
        _physical, seconds = bind_once(database, shards, parallel, core_cache)
        times.append(seconds)
    return round(min(times) * 1e3, 2)


def enumeration_metrics(physical) -> dict:
    """TTF + answers/sec for a warm top-k run over a bound plan."""
    best = None
    for _ in range(REPEATS):
        gc.collect()
        clock = time.perf_counter
        start = clock()
        produced = 0
        ttf = None
        for _result in physical.iter():
            if ttf is None:
                ttf = clock() - start
            produced += 1
            if produced >= TOP_K:
                break
        total = clock() - start
        sample = (produced / total, ttf, total, produced)
        if best is None or sample[0] > best[0]:
            best = sample
    answers_per_sec, ttf, total, produced = best
    return {
        "produced": produced,
        "answers_per_sec": round(answers_per_sec, 1),
        "ttf_ms": round((ttf or 0.0) * 1e3, 4),
        "ttl_ms": round(total * 1e3, 3),
    }


def run_cell(name: str, database) -> dict:
    print(f"== {name} (n={N}, top-{TOP_K})")
    serial_physical, _ = bind_once(database)
    reference = signature(serial_physical.iter(), VERIFY_PREFIX)
    serial_ms = best_bind_ms(database)
    serial_enum = enumeration_metrics(serial_physical)
    print(f"  serial: preprocess {serial_ms} ms, "
          f"{serial_enum['answers_per_sec']:.0f} answers/s, "
          f"ttf {serial_enum['ttf_ms']} ms")

    shard_cells = {}
    for shards in SHARD_COUNTS:
        physical, _ = bind_once(database, shards)
        assert signature(physical.iter(), VERIFY_PREFIX) == reference, (
            f"{name}: sharded prefix diverged at shards={shards}"
        )
        preprocess_ms = best_bind_ms(database, shards)
        enum = enumeration_metrics(physical)
        speedup = round(serial_ms / preprocess_ms, 2) if preprocess_ms else None
        shard_cells[str(shards)] = {
            "preprocess_ms": preprocess_ms,
            "preprocess_speedup": speedup,
            "mode": physical.mode,
            **enum,
        }
        print(f"  shards={shards}: preprocess {preprocess_ms} ms "
              f"({speedup}x, {physical.mode}), "
              f"{enum['answers_per_sec']:.0f} answers/s, "
              f"ttf {enum['ttf_ms']} ms")

    # Informational worker-pool timings at 4 shards (not gated: on a
    # single-core host the pools cannot beat the fused build).
    pool_ms = {}
    for parallel in ("thread", "process"):
        try:
            pool_ms[parallel] = best_bind_ms(database, 4, parallel)
        except Exception as exc:  # pool unavailable in this environment
            pool_ms[parallel] = None
            print(f"  pool mode {parallel} unavailable: {exc!r}")
    print(f"  4-shard pool timings: {pool_ms}")

    # Informational warm-start row (file-backed cells only): write the
    # compiled core once, then time fresh-engine binds that mmap it.
    # The gated warm-start acceptance lives in bench_hotpath's coldstart
    # section; this row shows the same effect under sharding.
    warm_mmap_ms = None
    core_path = getattr(getattr(database, "backend", None), "core_path", None)
    if core_path:
        writer = Engine(database)  # core_cache="auto" writes <db>.core
        writer.prepare(QUERY, shards=4).bind()
        writer.clear_caches()
        physical, _ = bind_once(database, 4, core_cache="auto")
        assert signature(physical.iter(), VERIFY_PREFIX) == reference, (
            f"{name}: warm-start prefix diverged at shards=4"
        )
        warm_mmap_ms = best_bind_ms(database, 4, core_cache="auto")
        print(f"  4-shard warm mmap bind: {warm_mmap_ms} ms")
        if os.path.exists(core_path):
            os.unlink(core_path)

    return {
        "n": N,
        "top_k": TOP_K,
        "serial_preprocess_ms": serial_ms,
        "serial": serial_enum,
        "shards": shard_cells,
        "pool_preprocess_ms_at_4": pool_ms,
        "warm_mmap_bind_ms_at_4": warm_mmap_ms,
        "speedup_at_4": shard_cells["4"]["preprocess_speedup"],
    }


def run_benchmark() -> dict:
    database = uniform_database(4, N, seed=93)
    cells = {"4-path[memory]": run_cell("4-path[memory]", database)}

    tmp = tempfile.mkdtemp(prefix="bench_parallel_")
    db_path = os.path.join(tmp, "bench.db")
    backend = SQLiteBackend(db_path)
    for relation in database:
        backend.ingest(relation)
    sqlite_database = backend.database()
    try:
        cells["4-path[sqlite]"] = run_cell("4-path[sqlite]", sqlite_database)
    finally:
        backend.close()
        os.unlink(db_path)
        os.rmdir(tmp)

    return {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "cells": cells,
    }


def regression_gate(previous: dict, current: dict) -> list[str]:
    """The committed acceptance: SQLite 4-shard preprocessing speedup.

    Two conditions: the absolute floor (``speedup_at_4 >= MIN_SPEEDUP``,
    the PR's acceptance criterion) and no regression beyond TOLERANCE
    against the committed same-mode number.  The speedup is a
    same-machine ratio, so it is robust to slower CI runners.
    """
    failures = []
    cell = current["cells"].get("4-path[sqlite]", {})
    speedup = cell.get("speedup_at_4") or 0.0
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"sqlite 4-path speedup_at_4 = {speedup:.2f}x "
            f"< required {MIN_SPEEDUP:.2f}x"
        )
    old_cell = (
        previous.get("modes", {}).get(MODE, {}).get("cells", {})
        .get("4-path[sqlite]", {})
    )
    old_speedup = old_cell.get("speedup_at_4")
    if old_speedup and speedup < old_speedup * (1.0 - TOLERANCE):
        failures.append(
            f"sqlite 4-path speedup_at_4 regressed: {speedup:.2f}x vs "
            f"committed {old_speedup:.2f}x (tolerance {TOLERANCE * 100:.0f}%)"
        )
    return failures


def main() -> int:
    previous = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            previous = json.load(handle)

    current = run_benchmark()
    failures = regression_gate(previous, current) if CHECK else []

    merged = {"benchmark": "parallel", "modes": previous.get("modes", {})}
    merged["modes"][MODE] = current
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {JSON_PATH} ({MODE} mode)")
    for cell_name, cell in current["cells"].items():
        print(f"headline {cell_name}: preprocess speedup at 4 shards = "
              f"{cell['speedup_at_4']}x")

    if failures:
        print("\nPARALLEL PERF GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if CHECK:
        print(f"parallel perf gate passed (floor {MIN_SPEEDUP:.2f}x, "
              f"tolerance {TOLERANCE * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
