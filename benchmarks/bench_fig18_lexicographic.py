"""Fig 18: lexicographic orders that defeat factorised representations.

On the instance R = {(i,1)}, S = {(1,j)} the lexicographic order
A -> C -> B disagrees with every factorisation order, forcing an FDB
restructuring of Ω(n²) size *before the first answer*.  Any-k needs only
linear preprocessing: the bench measures TTF and TT(k) under the
3-dimensional lexicographic dioid, plus a batch baseline that (like the
restructuring) materialises and sorts all n² results first.
"""

import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.anyk.base import make_enumerator
from repro.data.generators import fdb_lex_instance
from repro.dp.builder import build_tdp
from repro.query.builders import path_query
from repro.query.jointree import build_join_tree
from repro.ranking.dioid import LexicographicDioid

FIGURE = "fig18"
SIZES = [200, 400, 800]


def _setup(n):
    db = fdb_lex_instance(n)
    db.relations["R1"] = db["R"].rename("R1")
    db.relations["R2"] = db["S"].rename("R2")
    query = path_query(2)
    lex = LexicographicDioid(3)

    def lift(atom, values, _raw):
        # Order output tuples by A (=x1), then C (=x3), then B (=x2).
        if atom.relation_name == "R1":
            return (float(values[0]), 0.0, float(values[1]))
        return (0.0, float(values[1]), 0.0)

    return db, query, lex, lift


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ["take2", "lazy", "batch"])
def test_lexicographic_ttf(benchmark, n, algorithm):
    db, query, lex, lift = _setup(n)

    def job():
        start = time.perf_counter()
        tree = build_join_tree(query)
        tdp = build_tdp(db, tree, dioid=lex, lift=lift)
        enum = make_enumerator(tdp, algorithm)
        first = next(iter(enum))
        ttf = time.perf_counter() - start
        produced = 1 + sum(1 for _ in zip(range(n - 1), enum))
        ttk = time.perf_counter() - start
        return ttf, ttk, first, produced

    ttf, ttk, first, produced = pedantic(benchmark, job)
    assert first.assignment["x1"] == 1
    benchmark.extra_info["ttf_ms"] = round(ttf * 1e3, 3)
    record_result(
        FIGURE,
        f"n={n:>5} {algorithm:>7}: TTF={ttf * 1e3:9.2f} ms  "
        f"TT({produced})={ttk * 1e3:9.2f} ms  "
        f"(output size n^2 = {n * n})",
    )
