"""Fig 11 (a-h): TT(k) for 3-path and 6-path queries.

The paper's headline observation here: Recursive's TTL advantage grows
with path length (longer suffixes -> more shared ranking work), while
Lazy keeps winning the small-k regime on every input.
"""

import pytest

from benchmarks.conftest import (
    ANYK_ALGORITHMS,
    WITH_BATCH,
    cached_workload,
    run_ttk_benchmark,
)
from repro.experiments.workloads import (
    bitcoin,
    synthetic_large,
    synthetic_small,
    twitter,
)

FIGURE = "fig11"
SIZES = [3, 6]


@pytest.mark.parametrize("algorithm", WITH_BATCH)
@pytest.mark.parametrize("size", SIZES)
def test_synthetic_small_ttl(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/path{size}-small", lambda: synthetic_small("path", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_synthetic_large_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/path{size}-large", lambda: synthetic_large("path", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_bitcoin_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/path{size}-bitcoin", lambda: bitcoin("path", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)


@pytest.mark.parametrize("algorithm", ANYK_ALGORITHMS)
@pytest.mark.parametrize("size", SIZES)
def test_twitter_topk(benchmark, size, algorithm):
    workload = cached_workload(
        f"{FIGURE}/path{size}-twitter", lambda: twitter("path", size)
    )
    run_ttk_benchmark(benchmark, FIGURE, workload, algorithm)
