"""Fig 14: full-result seconds, our Batch vs a real SQL engine.

The paper validates its Batch implementation against PostgreSQL on the
eight synthetic workloads (3/4/6-path, 3/4/6-star, 4/6-cycle), finding
Batch 12-54% faster.  PostgreSQL is unavailable offline; stdlib SQLite
plays the same role: the identical Appendix-B SQL is executed against
an in-memory database with indexes, fully materialising and sorting the
join.  The report records the ratio per workload.
"""


import pytest

from benchmarks.conftest import cached_workload, pedantic, record_result
from repro.experiments.runner import measure_full_enumeration
from repro.experiments.sql_baseline import time_sqlite
from repro.experiments.workloads import synthetic_small

FIGURE = "fig14"

WORKLOADS = [
    ("path", 3),
    ("path", 4),
    ("path", 6),
    ("star", 3),
    ("star", 4),
    ("star", 6),
    ("cycle", 4),
    ("cycle", 6),
]


@pytest.mark.parametrize("shape,size", WORKLOADS,
                         ids=[f"{s}{n}" for s, n in WORKLOADS])
def test_batch_vs_sqlite(benchmark, shape, size):
    workload = cached_workload(
        f"{FIGURE}/{shape}{size}", lambda: synthetic_small(shape, size)
    )

    def run_batch():
        return measure_full_enumeration(
            workload.database, workload.query, "batch"
        )

    batch_result = pedantic(benchmark, run_batch)
    sqlite_seconds, sqlite_rows = time_sqlite(workload.database, workload.query)
    assert sqlite_rows == batch_result.produced, "engines must agree on |out|"
    faster = (sqlite_seconds - batch_result.ttk) / sqlite_seconds * 100.0
    benchmark.extra_info["sqlite_s"] = round(sqlite_seconds, 3)
    benchmark.extra_info["batch_s"] = round(batch_result.ttk, 3)
    record_result(
        FIGURE,
        f"{size}-{shape:<6} ({batch_result.produced:>7} results): "
        f"Batch={batch_result.ttk:7.3f} s  SQLite={sqlite_seconds:7.3f} s  "
        f"Batch is {faster:+.0f}% vs engine",
    )
