"""Fig 16/17: NPRR's TTF sub-optimality on database I1.

Instance I1 (Fig 16) has Θ(n²) 4-cycles but only one heavy value per
column, so the any-k pipeline's decomposition materialises O(n) bag
tuples and returns the top-ranked cycle in (near-)linear time, while a
worst-case-optimal join must produce the full quadratic output (plus a
sort) before the top result is known.

Expected shape (Fig 17): NPRR's TTF grows ~quadratically in n while
Recursive/Lazy TTF grows ~linearly; crossing happens immediately.
"""

import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.generators import nprr_hard_instance
from repro.experiments.runner import measure_ttk
from repro.joins.generic_join import generic_join
from repro.query.builders import cycle_query

FIGURE = "fig17"
SIZES = [250, 500, 1_000, 2_000]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algorithm", ["lazy", "recursive"])
def test_anyk_ttf(benchmark, n, algorithm):
    db = nprr_hard_instance(n, seed=17)
    query = cycle_query(4)

    def job():
        return measure_ttk(db, query, algorithm, k=1)

    result = pedantic(benchmark, job)
    benchmark.extra_info["ttf_ms"] = round(result.ttf * 1e3, 2)
    record_result(
        FIGURE,
        f"n={n:>5} {algorithm:>10}: TTF={result.ttf * 1e3:9.2f} ms",
    )


@pytest.mark.parametrize("n", SIZES)
def test_nprr_ttf(benchmark, n):
    """NPRR = worst-case-optimal join of the full output, then sort."""
    db = nprr_hard_instance(n, seed=17)
    query = cycle_query(4)

    def job():
        start = time.perf_counter()
        rows = generic_join(db, query)
        rows.sort(key=lambda item: item[0])
        top = rows[0]
        return time.perf_counter() - start, len(rows), top

    elapsed, produced, _top = pedantic(benchmark, job)
    assert produced == 2 * n * n
    benchmark.extra_info["ttf_ms"] = round(elapsed * 1e3, 2)
    record_result(
        FIGURE,
        f"n={n:>5} {'NPRR':>10}: TTF={elapsed * 1e3:9.2f} ms "
        f"(full output {produced} tuples + sort)",
    )
