"""Gateway overhead: HTTP fetch latency vs. the raw TCP protocol.

One engine behind both front doors — the JSON-lines TCP server and the
HTTP gateway sharing a single ``SessionManager`` — paginating the same
top-K query.  Reported: p50/p95/p99 fetch latency and answers/sec for
each transport, so the HTTP parse/keep-alive overhead per page is
directly visible.

Correctness gates ride along (PR-7 acceptance criteria, so a
regression fails the benchmark):

* the HTTP-paginated ranked prefix is **bit-identical** to the TCP
  prefix and to a direct engine enumeration;
* requests run with auth + rate limiting active at the edge (a high
  limit, so throttling never fires during the timed load — the gate is
  that the policy checks add their cost to every request);
* the gateway's ``/metrics`` latency window saw every timed fetch.

Set ``BENCH_SMOKE=1`` for the CI-sized run (assertions still execute).
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from benchmarks.conftest import pedantic, record_result
from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.experiments.runner import LatencyStats
from repro.serve import (
    AccessPolicy,
    GatewayThread,
    HttpServeClient,
    ServeClient,
    ServerThread,
)

FIGURE = "gateway"
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
RELATIONS = 3
TUPLES = 300 if SMOKE else 3_000
K = 120 if SMOKE else 1_000
PAGE = 20 if SMOKE else 50
TOKEN = "bench-token"
QUERY_TEXT = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


def wire_signature(rows):
    return [
        (
            round(row["weight"], 6),
            tuple(row["assignment"][v] for v in ("x1", "x2", "x3", "x4")),
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def engine() -> Engine:
    database = uniform_database(
        RELATIONS, TUPLES, domain_size=max(2, TUPLES // 10), seed=13
    )
    engine = Engine(database)
    engine.prepare(QUERY_TEXT, algorithm="take2").bind()
    return engine


@pytest.fixture(scope="module")
def baseline(engine) -> list:
    return signature(
        itertools.islice(engine.prepare(QUERY_TEXT, algorithm="take2").iter(), K)
    )


@pytest.fixture(scope="module")
def stack(engine):
    """TCP server + gateway over one shared SessionManager, edge policy on."""
    policy = AccessPolicy(auth_token=TOKEN, rate_limit=100_000.0)
    tcp = ServerThread(engine, slice_size=32, max_sessions=128, policy=policy)
    tcp_address = tcp.start()
    http = GatewayThread(engine, policy=policy, manager=tcp.server.manager)
    http_address = http.start()
    try:
        yield tcp_address, http_address
    finally:
        http.stop()
        tcp.stop()


def _page_through(fetch_page) -> tuple[list[dict], list[float]]:
    rows: list[dict] = []
    latencies: list[float] = []
    while len(rows) < K:
        start = time.perf_counter()
        page = fetch_page(min(PAGE, K - len(rows)))
        latencies.append(time.perf_counter() - start)
        rows.extend(page.results)
        if page.exhausted:
            break
    return rows[:K], latencies


@pytest.mark.parametrize("transport", ["tcp", "http"])
def test_gateway_fetch_latency(benchmark, engine, baseline, stack, transport):
    tcp_address, http_address = stack

    def job() -> LatencyStats:
        name = f"bench-{transport}"
        start = time.perf_counter()
        if transport == "tcp":
            with ServeClient(*tcp_address, timeout=120, token=TOKEN) as client:
                cursor = client.prepare(name, QUERY_TEXT, algorithm="take2")[
                    "cursor"
                ]
                rows, latencies = _page_through(
                    lambda n: client.fetch(name, cursor, n)
                )
                client.close_session(name)
        else:
            with HttpServeClient(*http_address, timeout=120, token=TOKEN) as client:
                cursor = client.prepare(name, QUERY_TEXT, algorithm="take2")[
                    "cursor"
                ]
                rows, latencies = _page_through(
                    lambda n: client.fetch(name, cursor, n)
                )
                client.close_session(name)
        elapsed = time.perf_counter() - start
        assert wire_signature(rows) == baseline[: len(rows)], (
            f"{transport} prefix diverged from the engine baseline"
        )
        return LatencyStats.from_samples(latencies, answers=K, elapsed=elapsed)

    stats = pedantic(benchmark, job, rounds=1 if SMOKE else 3)
    benchmark.extra_info.update(stats.as_dict())
    benchmark.extra_info["transport"] = transport
    record_result(
        FIGURE,
        f"transport={transport:<5} page={PAGE:<4} K={K:<6} {stats.row()}",
    )


def test_metrics_window_saw_the_load(stack):
    """The /metrics latency window must have recorded gateway fetches."""
    _, http_address = stack
    with HttpServeClient(*http_address, token=TOKEN) as client:
        metrics = client.metrics()
    fetch = metrics["latency"]["fetch"]
    assert fetch["total"] >= 1
    assert fetch["p50_ms"] <= fetch["p99_ms"]
    assert metrics["policy"]["denied_auth"] == 0
    assert metrics["policy"]["throttled"] == 0
    record_result(
        FIGURE,
        f"metrics: {metrics['gateway']['http_requests']} http requests, "
        f"fetch p50 {fetch['p50_ms']:.3f} ms  p99 {fetch['p99_ms']:.3f} ms",
    )


def test_prometheus_scrape_cost(stack):
    """Informational: wall time of one full /metrics exposition scrape.

    Scrape-time work (per-session memory estimates, compiled-core
    residency, histogram rendering) is deliberately paid here rather
    than on the fetch hot path; this row keeps its cost visible.
    """
    import http.client as http_client

    from repro.obs.metrics import validate_exposition

    _, http_address = stack
    samples = []
    text = ""
    for _ in range(5):
        conn = http_client.HTTPConnection(*http_address)
        start = time.perf_counter()
        conn.request(
            "GET", f"/metrics?format=prometheus&token={TOKEN}"
        )
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        samples.append(time.perf_counter() - start)
        conn.close()
        assert response.status == 200
    assert validate_exposition(text) == []
    record_result(
        FIGURE,
        f"prometheus scrape: {len(text.splitlines())} lines, "
        f"best of 5 {min(samples) * 1e3:.3f} ms (informational)",
    )
