"""Round trips through CSV and storage backends (property-based).

The invariant: once a value has been parsed into its canonical Python
form (int where possible, else float, else string), any chain of
CSV-write -> CSV-read -> backend-ingest -> export preserves tuples and
weights exactly.  The hypothesis strategies therefore generate values
already in canonical form (a string that *looks* numeric, like "007",
is excluded — CSV cannot represent that distinction, which the edge-case
tests below document explicitly).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.backend import MemoryBackend, SQLiteBackend
from repro.data.io import (
    ingest_csv,
    load_database,
    read_relation_csv,
    save_database,
    write_relation_csv,
)
from repro.data.relation import Relation

# -- strategies ---------------------------------------------------------------

ints = st.integers(min_value=-(10 ** 9), max_value=10 ** 9)
floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
).filter(lambda x: not float(x).is_integer())
#: Strings that can never be mistaken for numbers by the type inference.
words = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzXYZ_", min_size=1, max_size=8
).filter(lambda s: s.strip() == s)
values = st.one_of(ints, floats, words)
weights = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


@st.composite
def relations(draw, min_rows=0):
    arity = draw(st.integers(min_value=1, max_value=4))
    rows = draw(
        st.lists(
            st.tuples(
                st.tuples(*[values] * arity), weights
            ),
            min_size=min_rows,
            max_size=12,
        )
    )
    return Relation(
        "R",
        arity,
        [t for t, _w in rows],
        [float(w) for _t, w in rows],
    )


def assert_same_rows(left, right):
    assert list(left.rows()) == list(right.rows())
    assert left.arity == right.arity


# -- property-based round trips ----------------------------------------------


class TestCsvRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(relation=relations())
    def test_csv_preserves_tuples_and_weights(self, relation, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("csv") / "R.csv")
        write_relation_csv(relation, path)
        loaded = read_relation_csv(path, has_header=True)
        assert_same_rows(relation, loaded)

    @settings(max_examples=25, deadline=None)
    @given(relation=relations())
    def test_csv_to_sqlite_to_csv(self, relation, tmp_path_factory):
        root = tmp_path_factory.mktemp("sql")
        csv_in = str(root / "R.csv")
        csv_out = str(root / "R_out.csv")
        write_relation_csv(relation, csv_in)
        with SQLiteBackend(str(root / "r.db")) as backend:
            ingest_csv(backend, csv_in, has_header=True)
            stored = backend.relation("R")
            assert_same_rows(relation, stored)
            write_relation_csv(stored, csv_out)
        assert_same_rows(relation, read_relation_csv(csv_out, has_header=True))

    @settings(max_examples=25, deadline=None)
    @given(relation=relations())
    def test_memory_backend_round_trip(self, relation, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("mem") / "R.csv")
        write_relation_csv(relation, path)
        backend = MemoryBackend()
        ingest_csv(backend, path, has_header=True)
        assert_same_rows(relation, backend.relation("R"))


# -- explicit edge cases ------------------------------------------------------


class TestMissingWeightColumn:
    def test_read_without_weights(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("1,2\n3,4\n")
        relation = read_relation_csv(str(path), weight_column=None)
        assert relation.tuples == [(1, 2), (3, 4)]
        assert relation.weights == [0.0, 0.0]

    def test_ingest_without_weights(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("1,2\n3,4\n")
        backend = MemoryBackend()
        ingest_csv(backend, str(path), weight_column=None)
        assert list(backend.iter_rows("E")) == [((1, 2), 0.0), ((3, 4), 0.0)]

    def test_header_without_w_column(self, tmp_path):
        path = tmp_path / "H.csv"
        path.write_text("src,dst\n1,2\n")
        relation = read_relation_csv(
            str(path), weight_column=None, has_header=True
        )
        assert relation.tuples == [(1, 2)]
        assert relation.weights == [0.0]


class TestTypeInference:
    @pytest.mark.parametrize("token,expected", [
        ("5", 5),
        ("-5", -5),
        ("5.0", 5.0),
        ("1e3", 1000.0),
        ("-2.5e-1", -0.25),
        ("hello", "hello"),
        ("5a", "5a"),
        ("0x10", "0x10"),     # int() base-10 only: stays a string
    ])
    def test_scalar_parsing(self, tmp_path, token, expected):
        path = tmp_path / "T.csv"
        path.write_text(f"{token},0.5\n")
        relation = read_relation_csv(str(path))
        value = relation.tuples[0][0]
        assert value == expected
        assert type(value) is type(expected)

    def test_numeric_looking_string_is_lossy(self, tmp_path):
        """'007' cannot survive CSV: it reads back as the int 7."""
        relation = Relation("R", 1, [("007",)], [0.0])
        path = str(tmp_path / "R.csv")
        write_relation_csv(relation, path)
        assert read_relation_csv(path, has_header=True).tuples == [(7,)]

    def test_inference_matches_between_memory_and_sqlite(self, tmp_path):
        path = tmp_path / "M.csv"
        path.write_text("1,2.5,hello,9\n")
        relation = read_relation_csv(str(path))
        with SQLiteBackend(str(tmp_path / "m.db")) as backend:
            ingest_csv(backend, str(path))
            assert list(backend.iter_rows("M")) == list(relation.rows())


class TestEmptyRelations:
    def test_header_only_csv_reads_as_empty(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a1,a2,w\n")
        relation = read_relation_csv(str(path), has_header=True)
        assert len(relation) == 0
        assert relation.arity == 2

    def test_empty_relation_round_trips(self, tmp_path):
        relation = Relation("E", 3)
        path = str(tmp_path / "E.csv")
        write_relation_csv(relation, path)
        loaded = read_relation_csv(path, has_header=True)
        assert len(loaded) == 0
        assert loaded.arity == 3

    def test_ingest_header_only_csv(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a1,a2,w\n")
        with SQLiteBackend(str(tmp_path / "e.db")) as backend:
            ingest_csv(backend, str(path), has_header=True)
            assert backend.cardinality("E") == 0
            assert backend.arity("E") == 2

    def test_truly_empty_file_still_rejected(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="no tuples"):
            read_relation_csv(str(path))
        with pytest.raises(ValueError, match="no tuples"):
            ingest_csv(MemoryBackend(), str(path))

    def test_ragged_ingest_rolls_back(self, tmp_path):
        path = tmp_path / "Bad.csv"
        path.write_text("1,2,0.5\n1,2,3,0.5\n")
        backend = MemoryBackend()
        with pytest.raises(ValueError, match="inconsistent arity"):
            ingest_csv(backend, str(path))
        assert "Bad" not in backend.relation_names()

    def test_directory_ingest_is_all_or_nothing(self, tmp_path):
        """A malformed file mid-directory must not leave a half-loaded
        backend that a later warm start would mistake for complete."""
        directory = tmp_path / "d"
        os.makedirs(directory)
        (directory / "A.csv").write_text("1,2,0.5\n")
        (directory / "M.csv").write_text("1,2,0.5\n1,2,3,0.5\n")  # ragged
        (directory / "Z.csv").write_text("3,4,0.5\n")
        with SQLiteBackend(str(tmp_path / "d.db")) as backend:
            with pytest.raises(ValueError, match="inconsistent arity"):
                load_database(str(directory), backend=backend)
            assert backend.relation_names() == []


class TestDatabaseLevel:
    def test_load_database_into_backend(self, tmp_path):
        from repro.data.database import Database

        db = Database([
            Relation("R", 2, [(1, 2)], [1.0]),
            Relation("S", 2, [(2, 3)], [2.0]),
        ])
        save_database(db, str(tmp_path / "d"))
        with SQLiteBackend(str(tmp_path / "d.db")) as backend:
            loaded = load_database(str(tmp_path / "d"), backend=backend)
            assert loaded.backend is backend
            assert set(loaded.relations) == {"R", "S"}
            assert list(loaded["R"].rows()) == [((1, 2), 1.0)]
            # And the loaded database answers queries.
            from repro.engine import Engine

            results = Engine(loaded).execute(
                "Q(a, b, c) :- R(a, b), S(b, c)"
            )
            assert len(results) == 1 and results[0].weight == 3.0

    def test_save_database_streams_from_backend(self, tmp_path):
        with SQLiteBackend(str(tmp_path / "s.db")) as backend:
            backend.create("R", 2)
            backend.extend("R", [((1, 2), 0.5)])
            out = str(tmp_path / "out")
            save_database(backend.database(), out)
            assert os.path.exists(os.path.join(out, "R.csv"))
            loaded = read_relation_csv(
                os.path.join(out, "R.csv"), has_header=True
            )
            assert list(loaded.rows()) == [((1, 2), 0.5)]
