"""GYO reduction, acyclicity, and join-tree construction tests."""

import pytest

from repro.query.builders import cycle_query, path_query, star_query
from repro.query.hypergraph import Hypergraph, gyo_reduction
from repro.query.jointree import JoinTree, build_join_tree
from repro.query.parser import parse_query


def edges(*sets):
    return [frozenset(s) for s in sets]


class TestGYO:
    def test_single_edge_acyclic(self):
        assert gyo_reduction(edges("ab")).acyclic

    def test_path_acyclic(self):
        result = gyo_reduction(edges("ab", "bc", "cd"))
        assert result.acyclic
        assert len(result.elimination) == 3

    def test_triangle_cyclic(self):
        result = gyo_reduction(edges("ab", "bc", "ca"))
        assert not result.acyclic
        assert len(result.remaining) == 3

    def test_alpha_acyclic_with_big_edge(self):
        # {a,b,c} covers the triangle: alpha-acyclic despite the cycle.
        assert gyo_reduction(edges("ab", "bc", "ca", "abc")).acyclic

    def test_duplicate_edges_are_ears(self):
        result = gyo_reduction(edges("ab", "ab"))
        assert result.acyclic

    def test_subset_edge_is_ear(self):
        result = gyo_reduction(edges("abc", "ab"))
        assert result.acyclic
        # The subset must be removed with the superset as witness.
        assert (1, 0) in result.elimination

    def test_disconnected_acyclic(self):
        result = gyo_reduction(edges("ab", "cd"))
        assert result.acyclic
        roots = [e for e, w in result.elimination if w is None]
        assert len(roots) == 2, "one root per component"

    def test_priority_biases_removal_order(self):
        # Both edges of a 2-path are ears; priority selects which goes first.
        low_first = gyo_reduction(edges("ab", "bc"), priority=[0, 1])
        assert low_first.elimination[0][0] == 0
        high_first = gyo_reduction(edges("ab", "bc"), priority=[1, 0])
        assert high_first.elimination[0][0] == 1

    def test_4_cycle_cyclic_but_chordal_cover_acyclic(self):
        assert not gyo_reduction(edges("ab", "bc", "cd", "da")).acyclic
        assert gyo_reduction(edges("abc", "acd", "ab", "bc", "cd", "da")).acyclic


class TestHypergraph:
    def test_is_connected(self):
        h = Hypergraph("abc", edges("ab", "bc"))
        assert h.is_connected()
        h2 = Hypergraph("abcd", edges("ab", "cd"))
        assert not h2.is_connected()

    def test_isolated_node_disconnects(self):
        h = Hypergraph("abc", edges("ab"))
        assert not h.is_connected()

    def test_primal_edges(self):
        h = Hypergraph("abc", edges("abc"))
        assert h.primal_edges() == {("a", "b"), ("a", "c"), ("b", "c")}


class TestJoinTree:
    def test_path_tree_is_path(self):
        tree = build_join_tree(path_query(4))
        assert tree.is_path()
        tree.validate()

    def test_star_tree(self):
        tree = build_join_tree(star_query(4))
        tree.validate()
        roots = tree.roots()
        assert len(roots) == 1
        # The root has all other atoms below it (directly or not).
        assert len(tree.order) == 4
        assert tree.order[0] == roots[0]

    def test_cyclic_raises(self):
        with pytest.raises(ValueError, match="cyclic"):
            build_join_tree(cycle_query(3))

    def test_serialization_parents_first(self):
        tree = build_join_tree(star_query(5))
        seen = set()
        for atom in tree.order:
            parent = tree.parent[atom]
            assert parent == -1 or parent in seen
            seen.add(atom)

    def test_shared_variables(self):
        q = path_query(3)
        tree = build_join_tree(q)
        for child in range(3):
            parent = tree.parent[child]
            if parent == -1:
                assert tree.shared_variables(child) == ()
            else:
                shared = tree.shared_variables(child)
                assert len(shared) == 1

    def test_disconnected_query_forest(self):
        q = parse_query("R(a, b), S(c, d)")
        tree = build_join_tree(q)
        assert len(tree.roots()) == 2
        tree.validate()

    def test_rerooted_preserves_validity(self):
        q = path_query(4)
        tree = build_join_tree(q)
        for root in range(4):
            rerooted = tree.rerooted(root)
            assert rerooted.parent[root] == -1
            rerooted.validate()

    def test_rerooted_depth_changes(self):
        q = path_query(4)
        tree = build_join_tree(q).rerooted(0)
        assert tree.depth(3) == 4

    def test_parent_array_length_validated(self):
        q = path_query(2)
        with pytest.raises(ValueError):
            JoinTree(q, [0])

    def test_cycle_in_parent_array_detected(self):
        q = path_query(2)
        with pytest.raises(ValueError):
            JoinTree(q, [1, 0])

    def test_multi_attribute_join(self):
        q = parse_query("R(a, b, c), S(b, c, d)")
        tree = build_join_tree(q)
        child = [i for i in range(2) if tree.parent[i] != -1][0]
        assert tree.shared_variables(child) == ("b", "c")

    def test_validate_catches_broken_tree(self):
        # Hand-build an invalid tree for R(a,b), S(b,c), T(a,c):
        # acyclic variants aside, here var 'a' spans atoms 0 and 2 but
        # the connecting atom 1 lacks it.
        q = parse_query("R(a, b), S(b, c), T(c, a)")
        tree = JoinTree.__new__(JoinTree)
        tree.query = q
        tree.parent = [-1, 0, 1]
        tree.order = [0, 1, 2]
        with pytest.raises(ValueError):
            tree.validate()
