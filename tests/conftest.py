"""Shared fixtures and oracles for the test suite.

The central oracle is :func:`brute_force`: an exhaustive evaluation of a
full CQ by iterating the Cartesian product of all atom relations.  Every
enumeration pipeline is validated against it on instances small enough
for the product to stay tractable.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Any

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.cq import ConjunctiveQuery
from repro.ranking.dioid import TROPICAL, SelectiveDioid

#: All any-k algorithm names, including both batch variants.
ALL_ALGORITHMS = ["take2", "lazy", "eager", "all", "recursive", "batch"]
ANYK_ALGORITHMS = ["take2", "lazy", "eager", "all", "recursive"]


def brute_force(
    database: Database,
    query: ConjunctiveQuery,
    dioid: SelectiveDioid = TROPICAL,
    head: tuple[str, ...] | None = None,
) -> list[tuple[Any, tuple]]:
    """All answers of a full CQ as ``(weight, output_tuple)``, ranked.

    Exhaustive: iterates the full Cartesian product of the atom
    relations, so only use it on small instances.
    """
    head = head or query.head
    rows_per_atom = [
        list(enumerate(database[atom.relation_name].tuples))
        for atom in query.atoms
    ]
    out: list[tuple[Any, Any, tuple]] = []
    for combo in product(*rows_per_atom):
        assignment: dict[str, Any] = {}
        ok = True
        weight = dioid.one
        for (position, values), atom in zip(combo, query.atoms):
            for var, value in zip(atom.variables, values):
                if assignment.setdefault(var, value) != value:
                    ok = False
                    break
            if not ok:
                break
            weight = dioid.times(
                weight, database[atom.relation_name].weights[position]
            )
        if ok:
            out.append(
                (dioid.key(weight), weight, tuple(assignment[v] for v in head))
            )
    out.sort(key=lambda item: (item[0], item[2]))
    return [(weight, output) for _key, weight, output in out]


def weight_signature(results, precision: int = 6):
    """Multiset-comparable form of (weight, output) pairs (float-safe)."""
    return sorted((round(w, precision), o) for w, o in results)


def assert_ranked(weights, dioid: SelectiveDioid = TROPICAL) -> None:
    """Assert weights are non-decreasing under the dioid's order."""
    keys = [dioid.key(w) for w in weights]
    assert keys == sorted(keys), "results are not in ranked order"


def random_relation(
    name: str,
    n: int,
    domain: int,
    rng: random.Random,
    arity: int = 2,
    distinct: bool = False,
) -> Relation:
    """A random relation with uniform values and weights."""
    relation = Relation(name, arity)
    seen: set[tuple] = set()
    for _ in range(n):
        values = tuple(rng.randint(1, domain) for _ in range(arity))
        if distinct:
            if values in seen:
                continue
            seen.add(values)
        relation.add(values, round(rng.uniform(0.0, 100.0), 3))
    return relation


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_path_db() -> Database:
    """Three binary relations for a 3-path with a few thousand answers."""
    from repro.data.generators import uniform_database

    return uniform_database(3, 40, domain_size=5, seed=42)


@pytest.fixture
def tiny_db() -> Database:
    """A handcrafted database with known answers for spot checks."""
    r = Relation("R", 2, [(1, 2), (1, 3), (2, 3)], [1.0, 5.0, 2.0])
    s = Relation("S", 2, [(2, 7), (3, 7), (3, 8)], [2.0, 0.5, 4.0])
    return Database([r, s])
