"""Cross-feature integration tests: exotic dioids on the full pipeline,
exact-arithmetic tie handling, Boolean evaluation on cyclic queries."""

from fractions import Fraction

import pytest

from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.relation import Relation
from repro.enumeration.api import evaluate_boolean, ranked_enumerate
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from repro.ranking.dioid import MAX_TIMES
from tests.conftest import brute_force, weight_signature


class TestMaxTimesOnCycles:
    """Bag-semantics ranking through the cycle decomposition (no inverse)."""

    def test_4cycle_multiplicities(self):
        import random

        rng = random.Random(1)
        db = Database()
        for name in ("R1", "R2", "R3", "R4"):
            rel = Relation(name, 2)
            for _ in range(12):
                rel.add(
                    (rng.randint(1, 3), rng.randint(1, 3)),
                    float(rng.randint(1, 5)),
                )
            db.add(rel)
        query = cycle_query(4)
        expected = sorted(
            (w for w, _ in brute_force(db, query, dioid=MAX_TIMES)),
            reverse=True,
        )
        got = [
            r.weight
            for r in ranked_enumerate(db, query, dioid=MAX_TIMES,
                                      algorithm="take2")
        ]
        assert got == pytest.approx(expected)


class TestExactArithmetic:
    """Fraction weights: the dioid machinery is arithmetic-agnostic."""

    def test_fraction_weights_rank_exactly(self):
        # Dyadic fractions survive the float identity (0.0) exactly.
        r1 = Relation(
            "R1", 2, [(1, 2), (3, 2)],
            [Fraction(1, 4), Fraction(1, 2)],
        )
        r2 = Relation(
            "R2", 2, [(2, 5), (2, 6)],
            [Fraction(1, 8), Fraction(3, 4)],
        )
        db = Database([r1, r2])
        query = path_query(2)
        got = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="take2")
        ]
        weights = [w for w, _ in got]
        assert weights == sorted(weights)
        assert weights == [
            Fraction(3, 8),   # 1/4 + 1/8
            Fraction(5, 8),   # 1/2 + 1/8
            Fraction(1, 1),   # 1/4 + 3/4
            Fraction(5, 4),   # 1/2 + 3/4
        ]

    def test_integer_weights_through_cycle_pipeline(self):
        db = worst_case_cycle_database(4, 8, seed=2)
        for name in db.relations:
            rel = db[name]
            rel.weights = [int(w) for w in rel.weights]
        query = cycle_query(4)
        got = [r.weight for r in ranked_enumerate(db, query)]
        assert got == sorted(got)
        assert all(w == int(w) for w in got), "integer sums stay exact"
        expected = weight_signature(brute_force(db, query))
        assert weight_signature(
            (r.weight, r.output_tuple) for r in ranked_enumerate(db, query)
        ) == expected


class TestTiesEverywhere:
    def test_massive_ties_on_cycle(self):
        db = worst_case_cycle_database(4, 10, seed=3)
        for name in db.relations:
            db[name].weights = [1.0] * len(db[name])
        query = cycle_query(4)
        results = list(ranked_enumerate(db, query, algorithm="lazy"))
        assert len(results) == 2 * 5 * 5
        assert all(r.weight == 4.0 for r in results)
        outputs = {r.output_tuple for r in results}
        assert len(outputs) == len(results), "distinct outputs despite ties"

    def test_tie_order_deterministic_across_runs(self):
        db = worst_case_cycle_database(4, 8, seed=4)
        for name in db.relations:
            db[name].weights = [1.0] * len(db[name])
        query = cycle_query(4)
        first = [r.output_tuple for r in ranked_enumerate(db, query)]
        second = [r.output_tuple for r in ranked_enumerate(db, query)]
        assert first == second


class TestBooleanCyclic:
    def test_boolean_cycle_negative(self):
        db = Database(
            [
                Relation("R1", 2, [(1, 2)], [0.0]),
                Relation("R2", 2, [(2, 3)], [0.0]),
                Relation("R3", 2, [(3, 4)], [0.0]),
                Relation("R4", 2, [(4, 5)], [0.0]),  # never closes
            ]
        )
        assert evaluate_boolean(db, cycle_query(4)) is False

    def test_boolean_triangle_positive(self):
        db = Database(
            [
                Relation("R1", 2, [(1, 2)], [0.0]),
                Relation("R2", 2, [(2, 3)], [0.0]),
                Relation("R3", 2, [(3, 1)], [0.0]),
            ]
        )
        assert evaluate_boolean(db, cycle_query(3)) is True


class TestStringValues:
    def test_non_numeric_domain(self):
        r = Relation("R", 2, [("ann", "bob"), ("bob", "cat")], [1.0, 2.0])
        s = Relation("S", 2, [("bob", "dan"), ("cat", "eve")], [0.5, 0.25])
        db = Database([r, s])
        query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
        got = [(r_.weight, r_.output_tuple) for r_ in ranked_enumerate(db, query)]
        assert weight_signature(got) == weight_signature(brute_force(db, query))

    def test_string_values_through_cycle(self):
        db = Database(
            [
                Relation("R1", 2, [("a", "b")], [1.0]),
                Relation("R2", 2, [("b", "c")], [1.0]),
                Relation("R3", 2, [("c", "a")], [1.0]),
            ]
        )
        results = list(ranked_enumerate(db, cycle_query(3)))
        assert len(results) == 1
        assert results[0].output_tuple == ("a", "b", "c")


class TestInfinityAndExtremes:
    def test_zero_weight_tuples(self):
        db = uniform_database(2, 15, domain_size=3, seed=5)
        db["R1"].weights = [0.0] * len(db["R1"])
        query = path_query(2)
        got = weight_signature(
            (r.weight, r.output_tuple) for r in ranked_enumerate(db, query)
        )
        assert got == weight_signature(brute_force(db, query))

    def test_negative_weights(self):
        r1 = Relation("R1", 2, [(1, 2), (3, 2)], [-5.0, 2.0])
        r2 = Relation("R2", 2, [(2, 7)], [-1.0])
        db = Database([r1, r2])
        results = list(ranked_enumerate(db, path_query(2)))
        assert [r.weight for r in results] == [-6.0, 1.0]
