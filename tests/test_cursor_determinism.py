"""Property test: pause/resume at arbitrary points never changes the stream.

For every any-k variant, over both storage backends: a cursor advanced
by hypothesis-chosen fetch/skip/rewind patterns must deliver a stream
bit-identical to one uninterrupted enumeration.  This is the
correctness contract pagination rests on — a client may not observe
*where* the server paused its enumeration.
"""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.backend import SQLiteBackend
from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.engine.plan import VALID_ALGORITHMS
from repro.query.builders import path_query

QUERY = path_query(3)


def signature(results):
    return [
        (round(r.weight, 9), tuple(sorted(r.assignment.items())))
        for r in results
    ]


def build_engine(backend_kind: str) -> Engine:
    # Small domain so ties occur (the interesting case for determinism:
    # tie-breaking must not depend on where enumeration paused).
    database = uniform_database(3, 18, domain_size=3, seed=51)
    if backend_kind == "memory":
        return Engine(database)
    backend = SQLiteBackend(":memory:")
    for relation in database:
        backend.ingest(relation)
    return Engine.from_backend(backend)


#: engine cache: (backend, algorithm) -> (engine, uninterrupted baseline).
_cases: dict[tuple[str, str], tuple[Engine, list]] = {}


def case(backend_kind: str, algorithm: str) -> tuple[Engine, list]:
    key = (backend_kind, algorithm)
    if key not in _cases:
        engine = build_engine(backend_kind)
        prepared = engine.prepare(QUERY, algorithm=algorithm)
        _cases[key] = (engine, signature(prepared.iter()))
    return _cases[key]


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
@pytest.mark.parametrize("algorithm", VALID_ALGORITHMS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(fetch_sizes=st.lists(st.integers(min_value=0, max_value=9), max_size=12))
def test_paused_cursor_stream_is_bit_identical(
    backend_kind, algorithm, fetch_sizes
):
    engine, baseline = case(backend_kind, algorithm)
    prepared = engine.prepare(QUERY, algorithm=algorithm)
    cursor = prepared.cursor()
    collected = []
    for size in fetch_sizes:
        page = cursor.fetch(size)
        collected.extend(page)
        if cursor.exhausted:
            break
    # Resume: drain whatever the chosen pauses left over.
    while True:
        page = cursor.fetch(7)
        if not page:
            break
        collected.extend(page)
    assert signature(collected) == baseline


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    moves=st.lists(
        st.tuples(
            st.sampled_from(["fetch", "skip", "rewind"]),
            st.integers(min_value=0, max_value=8),
        ),
        max_size=10,
    )
)
def test_random_walk_reads_match_rank(backend_kind, moves):
    """Every answer a cursor ever returns is the answer *at its rank*."""
    engine, baseline = case(backend_kind, "take2")
    cursor = engine.prepare(QUERY, algorithm="take2").cursor()
    for action, amount in moves:
        if action == "fetch":
            position = cursor.position
            page = cursor.fetch(amount)
            assert signature(page) == baseline[position:position + len(page)]
        elif action == "skip":
            cursor.skip(amount)
        else:
            cursor.rewind(max(0, cursor.position - amount))


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
@pytest.mark.parametrize("algorithm", VALID_ALGORITHMS)
def test_interleaved_cursors_are_independent(backend_kind, algorithm):
    """Two cursors advanced in lockstep each see the full stream."""
    engine, baseline = case(backend_kind, algorithm)
    prepared = engine.prepare(QUERY, algorithm=algorithm)
    fast, slow = prepared.cursor(), prepared.cursor()
    fast_rows, slow_rows = [], []
    while not (fast.exhausted and slow.exhausted):
        fast_rows.extend(fast.fetch(5))
        slow_rows.extend(slow.fetch(2))
    assert signature(fast_rows) == baseline
    assert signature(slow_rows) == baseline
