"""SessionManager: lifecycle, eviction, budgets, and fair scheduling."""

from __future__ import annotations

import asyncio

import pytest

from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.engine import Engine
from repro.query.builders import cycle_query, path_query
from repro.serve.session import (
    CooperativeScheduler,
    SessionBudgetExceeded,
    SessionManager,
    UnknownCursor,
    UnknownSession,
)


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


@pytest.fixture
def engine() -> Engine:
    return Engine(uniform_database(3, 40, domain_size=5, seed=7))


@pytest.fixture
def manager(engine) -> SessionManager:
    return SessionManager(engine, slice_size=8)


# -- lifecycle -----------------------------------------------------------------


class TestSessionLifecycle:
    def test_create_fetch_close(self, engine, manager):
        session, cursor_id = manager.open_cursor("alice", QUERY)
        outcome = manager.fetch("alice", cursor_id, 10)
        assert len(outcome.results) == 10
        assert outcome.position == 10
        assert signature(outcome.results) == signature(
            engine.prepare(path_query(3)).top(10)
        )
        manager.close_cursor("alice", cursor_id)
        with pytest.raises(UnknownCursor):
            manager.fetch("alice", cursor_id, 1)
        manager.close_session("alice")
        with pytest.raises(UnknownSession):
            manager.session("alice", create=False)

    def test_sessions_are_isolated_but_share_the_stream(self, manager):
        _, c1 = manager.open_cursor("a", QUERY)
        _, c2 = manager.open_cursor("b", QUERY)
        page_a = manager.fetch("a", c1, 10)
        page_b = manager.fetch("b", c2, 10)
        # Same ranked prefix, independent positions.
        assert signature(page_a.results) == signature(page_b.results)
        assert manager.engine.stats.stream_misses == 1
        assert manager.engine.stats.binds == 1

    def test_unknown_session_and_cursor(self, manager):
        with pytest.raises(UnknownSession):
            manager.fetch("ghost", "c0", 1)
        manager.open_cursor("alice", QUERY)
        with pytest.raises(UnknownCursor):
            manager.fetch("alice", "c99", 1)

    def test_explain_and_stats(self, manager):
        _, cursor_id = manager.open_cursor("alice", QUERY)
        manager.fetch("alice", cursor_id, 5)
        assert "logical plan" in manager.explain("alice", cursor_id)
        stats = manager.stats()
        assert stats["session_count"] == 1
        assert stats["sessions"]["alice"]["served"] == 5
        assert stats["scheduler"]["slice_size"] == 8


class TestEviction:
    def test_lru_eviction_past_max_sessions(self, engine):
        manager = SessionManager(engine, max_sessions=2)
        manager.session("a")
        manager.session("b")
        manager.session("a")  # refresh a: b is now least-recent
        manager.session("c")  # evicts b
        assert sorted(manager.session_names()) == ["a", "c"]
        assert manager.evictions == 1

    def test_ttl_expiry(self, engine):
        now = [0.0]
        manager = SessionManager(
            engine, ttl_seconds=10.0, clock=lambda: now[0]
        )
        _, cursor_id = manager.open_cursor("alice", QUERY)
        now[0] = 5.0
        manager.fetch("alice", cursor_id, 1)  # touch at t=5
        now[0] = 14.0
        assert manager.evict_expired() == 0  # idle 9s < ttl
        now[0] = 16.0
        assert manager.evict_expired() == 1  # idle 11s > ttl
        assert manager.expirations == 1
        with pytest.raises(UnknownSession):
            manager.session("alice", create=False)

    def test_expiry_is_lazy_on_access(self, engine):
        now = [0.0]
        manager = SessionManager(
            engine, ttl_seconds=10.0, clock=lambda: now[0]
        )
        manager.session("alice")
        now[0] = 20.0
        # Any session access sweeps expired sessions first.
        manager.session("bob")
        assert manager.session_names() == ["bob"]

    def test_reopened_session_reuses_memoized_prefix(self, engine):
        manager = SessionManager(engine, max_sessions=1)
        _, c1 = manager.open_cursor("a", QUERY)
        manager.fetch("a", c1, 20)
        manager.session("b")  # evicts a (and its cursors)
        _, c2 = manager.open_cursor("a", QUERY)
        manager.fetch("a", c2, 20)
        # The evicted session's enumeration work was not repeated.
        assert engine.stats.stream_misses == 1
        stream_stats = manager.cursor("a", c2).stream.stats()
        assert stream_stats["extensions"] == 20


class TestBudgets:
    def test_session_budget_across_cursors(self, engine):
        manager = SessionManager(engine, result_budget=15)
        _, c1 = manager.open_cursor("alice", QUERY)
        _, c2 = manager.open_cursor("alice", QUERY)
        manager.fetch("alice", c1, 10)
        with pytest.raises(SessionBudgetExceeded):
            manager.fetch("alice", c2, 10)
        # A fitting page still goes through; the failed one cost nothing.
        assert len(manager.fetch("alice", c2, 5).results) == 5

    def test_budget_is_per_session(self, engine):
        manager = SessionManager(engine, result_budget=10)
        _, c1 = manager.open_cursor("a", QUERY)
        _, c2 = manager.open_cursor("b", QUERY)
        manager.fetch("a", c1, 10)
        assert len(manager.fetch("b", c2, 10).results) == 10

    def test_cursor_budget_clamps_sliced_fetch(self, engine):
        """A cursor budget smaller than the request must clamp, never
        discard slices already served (regression: the scheduler used
        to trip the budget mid-slicing and lose the partial page)."""
        manager = SessionManager(engine, slice_size=4)
        _, cursor_id = manager.open_cursor("a", QUERY, budget=10)
        outcome = manager.fetch("a", cursor_id, 25)
        assert len(outcome.results) == 10
        assert outcome.position == 10
        assert manager.fetch("a", cursor_id, 25).results == []

    def test_short_page_refunds_reservation(self):
        from repro.data.database import Database
        from repro.data.relation import Relation

        tiny = Database([
            Relation("R", 2, [(1, 2), (1, 3)], [1.0, 2.0]),
            Relation("S", 2, [(2, 7)], [0.5]),
        ])
        manager = SessionManager(Engine(tiny), result_budget=50)
        _, cursor_id = manager.open_cursor(
            "a", "Q(x, y, z) :- R(x, y), S(y, z)"
        )
        session = manager.session("a")
        # The output has 1 answer; asking for 50 reserves 50 up front
        # and must refund the 49 unused — not count them as served.
        total = len(manager.fetch("a", cursor_id, 50).results)
        assert total == 1
        assert session.served == 1

    def test_concurrent_fetches_cannot_overrun_budget(self, engine):
        """Reservation semantics: the check and the spend are atomic."""
        import threading

        manager = SessionManager(engine, result_budget=30, slice_size=4)
        _, c1 = manager.open_cursor("a", QUERY)
        _, c2 = manager.open_cursor("a", QUERY)
        served: list[int] = []
        rejected: list[Exception] = []
        barrier = threading.Barrier(2, timeout=30)

        def worker(cursor_id: str) -> None:
            barrier.wait()
            try:
                served.append(len(manager.fetch("a", cursor_id, 20).results))
            except SessionBudgetExceeded as exc:
                rejected.append(exc)

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in (c1, c2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # 20 + 20 > 30: exactly one fetch may pass; the session never
        # serves more than its budget.
        assert sum(served) <= 30
        assert len(served) == 1 and len(rejected) == 1
        assert manager.session("a").served == sum(served)


# -- the cooperative scheduler -------------------------------------------------


class TestScheduler:
    def test_slicing_math(self):
        scheduler = CooperativeScheduler(slice_size=10)
        assert list(scheduler._slices(25)) == [10, 10, 5]
        assert list(scheduler._slices(10)) == [10]
        assert list(scheduler._slices(3)) == [3]
        with pytest.raises(ValueError):
            CooperativeScheduler(slice_size=0)

    def test_sliced_fetch_equals_unsliced(self, engine):
        sliced = SessionManager(engine, slice_size=3)
        _, cursor_id = sliced.open_cursor("a", QUERY)
        outcome = sliced.fetch("a", cursor_id, 20)
        assert len(outcome.results) == 20
        assert outcome.slices == 7  # ceil(20 / 3)
        assert signature(outcome.results) == signature(
            engine.prepare(path_query(3)).top(20)
        )

    def test_sink_failure_rewinds_and_charges_delivered(self, engine):
        """A client disconnect mid-stream must not lose the in-flight
        slice (rewound for re-fetch) nor refund delivered results."""
        manager = SessionManager(engine, slice_size=10, result_budget=1000)
        _, cursor_id = manager.open_cursor("a", QUERY)
        session = manager.session("a")
        calls = []

        async def failing_sink(start, page):
            calls.append((start, len(page)))
            if len(calls) == 2:
                raise ConnectionResetError("client went away")

        async def run():
            await manager.fetch_async("a", cursor_id, 40, sink=failing_sink)

        with pytest.raises(ConnectionResetError):
            asyncio.run(run())
        cursor = manager.cursor("a", cursor_id)
        # Slice 1 (ranks 0-9) was delivered; slice 2 was rewound.
        assert cursor.position == 10
        assert session.served == 10
        # The client reconnects and re-fetches the lost page for free.
        outcome = manager.fetch("a", cursor_id, 10)
        assert outcome.position == 20
        assert session.served == 20

    def test_fetch_async_matches_sync(self, engine):
        manager = SessionManager(engine, slice_size=4)
        _, c_sync = manager.open_cursor("sync", QUERY)
        _, c_async = manager.open_cursor("async", QUERY)
        sync_results = manager.fetch("sync", c_sync, 30).results

        async def run():
            return await manager.fetch_async("async", c_async, 30)

        outcome = asyncio.run(run())
        assert signature(outcome.results) == signature(sync_results)
        assert manager.scheduler.yields > 0

    def test_heavy_query_does_not_starve_cheap_one(self):
        """Fairness: a cheap fetch completes while a heavy one is mid-flight.

        The heavy request enumerates a large prefix of a worst-case
        cycle query; the cheap request wants 5 path answers.  With
        cooperative slicing the cheap fetch must finish long before the
        heavy one, even though the heavy one was scheduled first.
        """
        database = worst_case_cycle_database(4, 60, seed=3)
        cheap_db = uniform_database(2, 30, domain_size=4, seed=4)
        for relation in cheap_db:
            database.add(relation.rename(f"P{relation.name}"))
        engine = Engine(database)
        manager = SessionManager(engine, slice_size=16)
        _, heavy = manager.open_cursor(
            "heavy",
            cycle_query(4),
            algorithm="lazy",
        )
        _, cheap = manager.open_cursor(
            "cheap",
            "Q(x1, x2, x3) :- PR1(x1, x2), PR2(x2, x3)",
        )
        completion_order: list[str] = []

        async def run(name, session, cursor_id, n):
            outcome = await manager.fetch_async(session, cursor_id, n)
            completion_order.append(name)
            return outcome

        async def main():
            heavy_task = asyncio.ensure_future(
                run("heavy", "heavy", heavy, 4000)
            )
            # Give the heavy fetch a head start on the event loop.
            await asyncio.sleep(0)
            cheap_task = asyncio.ensure_future(
                run("cheap", "cheap", cheap, 5)
            )
            return await asyncio.gather(heavy_task, cheap_task)

        heavy_outcome, cheap_outcome = asyncio.run(main())
        assert completion_order[0] == "cheap"
        assert len(cheap_outcome.results) == 5
        assert len(heavy_outcome.results) > 100


def test_manager_repr(engine):
    manager = SessionManager(engine)
    manager.session("a")
    assert "1 sessions" in repr(manager)
