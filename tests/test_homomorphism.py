"""Minimum-cost homomorphism tests (Section 8.2 / Algorithm 3)."""

import itertools

import pytest

from repro.homomorphism import (
    min_cost_homomorphism,
    pattern_query,
    ranked_homomorphisms,
)


def brute_homomorphisms(pattern_edges, target_edges, weights):
    """Exhaustive oracle over all vertex mappings."""
    vertices = sorted({v for edge in pattern_edges for v in edge})
    edge_weight = {}
    for edge, weight in zip(target_edges, weights):
        edge_weight.setdefault(tuple(edge), weight)
    values = sorted({v for edge in target_edges for v in edge})
    results = []
    for image in itertools.product(values, repeat=len(vertices)):
        mapping = dict(zip(vertices, image))
        cost = 0.0
        ok = True
        for edge in pattern_edges:
            target = tuple(mapping[v] for v in edge)
            if target not in edge_weight:
                ok = False
                break
            cost += edge_weight[target]
        if ok:
            results.append((round(cost, 6), tuple(mapping[v] for v in vertices)))
    results.sort()
    return results


TRIANGLE_TARGET = [
    (1, 2), (2, 3), (3, 1),     # a light triangle
    (4, 5), (5, 6), (6, 4),     # a heavy triangle
    (1, 4), (2, 2),             # extra edges + a loop
]
TRIANGLE_WEIGHTS = [1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 2.0, 0.5]


class TestPatternQuery:
    def test_atoms_and_head(self):
        q = pattern_query([("u", "v"), ("v", "w")])
        assert q.num_atoms == 2
        assert q.head == ("u", "v", "w")
        assert all(a.relation_name == "G2" for a in q.atoms)

    def test_mixed_arities(self):
        q = pattern_query([("u", "v"), ("u", "v", "w")])
        assert {a.relation_name for a in q.atoms} == {"G2", "G3"}

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            pattern_query([])


class TestRankedHomomorphisms:
    def test_path_pattern_matches_oracle(self):
        pattern = [("u", "v"), ("v", "w")]
        expected = brute_homomorphisms(pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS)
        got = [
            (round(cost, 6), (m["u"], m["v"], m["w"]))
            for cost, m in ranked_homomorphisms(
                pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS
            )
        ]
        assert sorted(got) == expected
        assert [c for c, _ in got] == sorted(c for c, _ in got)

    def test_cyclic_pattern_triangle(self):
        pattern = [("a", "b"), ("b", "c"), ("c", "a")]
        expected = brute_homomorphisms(pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS)
        got = [
            (round(cost, 6), (m["a"], m["b"], m["c"]))
            for cost, m in ranked_homomorphisms(
                pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS
            )
        ]
        assert sorted(got) == expected

    def test_loop_pattern(self):
        # A pattern edge (x, x) can only map onto target loops.
        pattern = [("x", "x")]
        got = list(
            ranked_homomorphisms(pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS)
        )
        assert got == [(0.5, {"x": 2})]

    def test_missing_arity_rejected(self):
        with pytest.raises(ValueError, match="no edges for pattern arities"):
            list(ranked_homomorphisms([("a", "b", "c")], [(1, 2)], [1.0]))


class TestMinCost:
    def test_min_cost_triangle(self):
        pattern = [("a", "b"), ("b", "c"), ("c", "a")]
        result = min_cost_homomorphism(
            pattern, TRIANGLE_TARGET, TRIANGLE_WEIGHTS
        )
        assert result is not None
        cost, mapping = result
        # Homomorphisms need not be injective: folding the whole
        # triangle onto the loop (2,2) costs 3 * 0.5.
        assert cost == 1.5
        assert mapping == {"a": 2, "b": 2, "c": 2}

    def test_min_cost_triangle_without_loop(self):
        target = [e for e in TRIANGLE_TARGET if e != (2, 2)]
        weights = [
            w for e, w in zip(TRIANGLE_TARGET, TRIANGLE_WEIGHTS) if e != (2, 2)
        ]
        cost, mapping = min_cost_homomorphism(
            [("a", "b"), ("b", "c"), ("c", "a")], target, weights
        )
        assert cost == 3.0, "without the loop, the light triangle wins"
        assert {mapping["a"], mapping["b"], mapping["c"]} == {1, 2, 3}

    def test_no_homomorphism(self):
        # A 4-clique pattern cannot map into a triangle-free target...
        # simplest: a loop pattern with no loops in the target.
        result = min_cost_homomorphism([("x", "x")], [(1, 2), (2, 1)], [1.0, 1.0])
        assert result is None

    def test_default_weights(self):
        result = min_cost_homomorphism([("u", "v")], [(1, 2)])
        assert result == (0.0, {"u": 1, "v": 2})

    def test_weight_count_validated(self):
        with pytest.raises(ValueError, match="one weight per target edge"):
            min_cost_homomorphism([("u", "v")], [(1, 2)], [1.0, 2.0])

    def test_star_pattern(self):
        pattern = [("c", "l1"), ("c", "l2"), ("c", "l3")]
        target = [(1, 2), (1, 3), (4, 5)]
        weights = [1.0, 10.0, 100.0]
        cost, mapping = min_cost_homomorphism(pattern, target, weights)
        # Centre maps to 1; all leaves take the cheapest edge (1,2).
        assert cost == 3.0
        assert mapping["c"] == 1
        assert mapping["l1"] == mapping["l2"] == mapping["l3"] == 2
