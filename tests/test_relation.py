"""Unit tests for the relational substrate (Relation)."""

import pytest

from repro.data.relation import Relation


def test_construction_and_len():
    r = Relation("R", 2, [(1, 2), (3, 4)], [1.0, 2.0])
    assert len(r) == 2
    assert r.arity == 2
    assert list(r) == [(1, 2), (3, 4)]
    assert list(r.rows()) == [((1, 2), 1.0), ((3, 4), 2.0)]


def test_default_weights_are_zero():
    r = Relation("R", 1, [(1,), (2,)])
    assert r.weights == [0.0, 0.0]


def test_arity_validation():
    with pytest.raises(ValueError):
        Relation("R", 0)
    with pytest.raises(ValueError):
        Relation("R", 2, [(1,)])
    r = Relation("R", 2)
    with pytest.raises(ValueError):
        r.add((1, 2, 3))


def test_weight_length_validation():
    with pytest.raises(ValueError):
        Relation("R", 1, [(1,)], [1.0, 2.0])


def test_from_pairs():
    r = Relation.from_pairs("E", [(1, 2), (2, 3)], [0.5, 0.7])
    assert r.arity == 2
    assert r.tuples == [(1, 2), (2, 3)]


def test_add_appends():
    r = Relation("R", 2)
    r.add((1, 2), 3.5)
    assert r.tuples == [(1, 2)]
    assert r.weights == [3.5]


def test_rename_shares_storage():
    r = Relation("R", 2, [(1, 2)], [1.0])
    s = r.rename("S")
    assert s.name == "S"
    r.add((3, 4), 2.0)
    assert s.tuples == [(1, 2), (3, 4)], "rename must share tuple storage"


def test_filter():
    r = Relation("R", 2, [(1, 2), (2, 2), (3, 1)], [1.0, 2.0, 3.0])
    f = r.filter(lambda t: t[1] == 2)
    assert f.tuples == [(1, 2), (2, 2)]
    assert f.weights == [1.0, 2.0]


def test_project_distinct_default_weight():
    r = Relation("R", 2, [(1, 2), (1, 3), (2, 3)], [5.0, 6.0, 7.0])
    p = r.project([0], name="P", default_weight=0.0)
    assert p.tuples == [(1,), (2,)]
    assert p.weights == [0.0, 0.0]


def test_project_keeps_duplicates_when_asked():
    r = Relation("R", 2, [(1, 2), (1, 3)], [5.0, 6.0])
    p = r.project([0], distinct=False)
    assert p.tuples == [(1,), (1,)]


def test_project_column_order():
    r = Relation("R", 3, [(1, 2, 3)], [0.0])
    p = r.project([2, 0])
    assert p.tuples == [(3, 1)]


def test_column_values():
    r = Relation("R", 2, [(1, 2), (1, 3), (4, 2)], [0, 0, 0])
    assert r.column_values(0) == {1, 4}
    assert r.column_values(1) == {2, 3}


def test_sorted_by_weight():
    r = Relation("R", 1, [(1,), (2,), (3,)], [5.0, 1.0, 3.0])
    s = r.sorted_by_weight()
    assert s.tuples == [(2,), (3,), (1,)]
    assert s.weights == [1.0, 3.0, 5.0]


def test_sorted_by_weight_custom_key():
    r = Relation("R", 1, [(1,), (2,)], [5.0, 1.0])
    s = r.sorted_by_weight(key=lambda w: -w)
    assert s.weights == [5.0, 1.0]


def test_repr_contains_name_and_size():
    r = Relation("Edges", 2, [(1, 2)], [0.0])
    assert "Edges" in repr(r)
    assert "n=1" in repr(r)
