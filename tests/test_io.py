"""CSV import/export tests."""

import os

import pytest

from repro.data.database import Database
from repro.data.io import (
    load_database,
    read_relation_csv,
    save_database,
    write_relation_csv,
)
from repro.data.relation import Relation


@pytest.fixture
def rel():
    return Relation("R", 2, [(1, 2), (3, 4), (5, 6)], [1.5, 2.5, 3.5])


class TestRoundTrip:
    def test_relation_round_trip(self, rel, tmp_path):
        path = tmp_path / "R.csv"
        write_relation_csv(rel, str(path))
        loaded = read_relation_csv(str(path), has_header=True)
        assert loaded.name == "R"
        assert loaded.tuples == rel.tuples
        assert loaded.weights == rel.weights

    def test_database_round_trip(self, rel, tmp_path):
        db = Database([rel, Relation("S", 1, [(7,)], [0.25])])
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert set(loaded.relations) == {"R", "S"}
        assert loaded["S"].tuples == [(7,)]
        assert loaded["S"].weights == [0.25]

    def test_round_trip_supports_queries(self, rel, tmp_path):
        from repro.enumeration.api import ranked_enumerate
        from repro.query.parser import parse_query

        db = Database(
            [
                Relation("R", 2, [(1, 2)], [1.0]),
                Relation("S", 2, [(2, 3)], [2.0]),
            ]
        )
        save_database(db, str(tmp_path / "d"))
        loaded = load_database(str(tmp_path / "d"))
        q = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
        results = list(ranked_enumerate(loaded, q))
        assert len(results) == 1 and results[0].weight == 3.0


class TestReading:
    def test_no_weight_column(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("1,2\n3,4\n")
        rel = read_relation_csv(str(path), weight_column=None)
        assert rel.tuples == [(1, 2), (3, 4)]
        assert rel.weights == [0.0, 0.0]
        assert rel.name == "E"

    def test_value_parsing(self, tmp_path):
        path = tmp_path / "M.csv"
        path.write_text("1,2.5,hello,9\n")
        rel = read_relation_csv(str(path))
        assert rel.tuples == [(1, 2.5, "hello")]
        assert rel.weights == [9.0]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "B.csv"
        path.write_text("1,2,0.5\n\n3,4,0.7\n")
        rel = read_relation_csv(str(path))
        assert len(rel) == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="no tuples"):
            read_relation_csv(str(path))

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "Ragged.csv"
        path.write_text("1,2,0.5\n1,2,3,0.5\n")
        with pytest.raises(ValueError, match="inconsistent arity"):
            read_relation_csv(str(path))

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("1\t2\t0.5\n")
        rel = read_relation_csv(str(path), delimiter="\t")
        assert rel.tuples == [(1, 2)]

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "whatever.csv"
        path.write_text("1,0.5\n")
        rel = read_relation_csv(str(path), name="Edges")
        assert rel.name == "Edges"


class TestLoadDatabase:
    def test_empty_directory_rejected(self, tmp_path):
        os.makedirs(tmp_path / "empty", exist_ok=True)
        with pytest.raises(ValueError, match="no CSV relations"):
            load_database(str(tmp_path / "empty"))

    def test_non_csv_ignored(self, tmp_path):
        directory = tmp_path / "d"
        os.makedirs(directory)
        (directory / "notes.txt").write_text("ignore me")
        (directory / "R.csv").write_text("1,2,0.5\n")
        db = load_database(str(directory))
        assert set(db.relations) == {"R"}

    def test_headerless_files(self, tmp_path):
        directory = tmp_path / "d"
        os.makedirs(directory)
        (directory / "R.csv").write_text("1,2,0.5\n3,4,0.7\n")
        db = load_database(str(directory))
        assert db["R"].weights == [0.5, 0.7]
