"""Cross-implementation oracle checks at scales brute force cannot reach.

Generic-Join and Yannakakis are implemented independently of the T-DP
pipeline; agreement between all three on inputs of a few hundred tuples
gives much stronger evidence than the small brute-force tests.
"""

import pytest

from repro.data.generators import (
    nprr_hard_instance,
    uniform_database,
    worst_case_cycle_database,
)
from repro.enumeration.api import ranked_enumerate
from repro.joins.generic_join import generic_join
from repro.joins.yannakakis import yannakakis
from repro.query.builders import cycle_query, path_query, star_query


def pipeline_signature(db, query, algorithm="take2"):
    # round(4): weights reach ~1e5 here and the oracles aggregate in a
    # different order, so the last ulp can flip a round(6) digit.
    return sorted(
        (round(r.weight, 4), r.output_tuple)
        for r in ranked_enumerate(db, query, algorithm=algorithm)
    )


class TestAgainstGenericJoin:
    @pytest.mark.parametrize("ell,n", [(4, 80), (5, 50), (6, 40)])
    def test_cycles_at_scale(self, ell, n):
        db = uniform_database(ell, n, domain_size=max(2, n // 8), seed=ell * n)
        query = cycle_query(ell)
        expected = sorted(
            (round(w, 4), a) for w, a, _ in generic_join(db, query)
        )
        assert pipeline_signature(db, query) == expected

    def test_worst_case_cycle_at_scale(self):
        db = worst_case_cycle_database(4, 100, seed=1)
        query = cycle_query(4)
        expected = sorted(
            (round(w, 4), a) for w, a, _ in generic_join(db, query)
        )
        assert pipeline_signature(db, query, "recursive") == expected

    def test_nprr_instance_at_scale(self):
        db = nprr_hard_instance(40, seed=2)
        query = cycle_query(4)
        expected = sorted(
            (round(w, 4), a) for w, a, _ in generic_join(db, query)
        )
        assert len(expected) == 2 * 40 * 40
        assert pipeline_signature(db, query, "lazy") == expected


class TestAgainstYannakakis:
    @pytest.mark.parametrize("builder,ell,n", [
        (path_query, 4, 300),
        (path_query, 6, 150),
        (star_query, 4, 200),
    ])
    def test_acyclic_at_scale(self, builder, ell, n):
        db = uniform_database(ell, n, domain_size=max(2, n // 6), seed=n + ell)
        query = builder(ell)
        expected = sorted(
            (round(w, 4), a) for w, a in yannakakis(db, query)
        )
        got = pipeline_signature(db, query)
        assert got == expected
        # And the ranked order is globally consistent across algorithms.
        first_weights = [
            r.weight
            for _, r in zip(range(50), ranked_enumerate(db, query, algorithm="recursive"))
        ]
        # approx: the two implementations aggregate weights in different
        # stage orders, so sums may differ in the last ulp.
        assert first_weights == pytest.approx(
            [w for w, _ in sorted((w, a) for w, a in yannakakis(db, query))][:50]
        )


class TestThreeWayAgreement:
    def test_triangle_three_oracles(self):
        import random

        from repro.data.database import Database
        from repro.data.relation import Relation

        rng = random.Random(3)
        db = Database()
        for name in ("R1", "R2", "R3"):
            rel = Relation(name, 2)
            seen = set()
            for _ in range(60):
                t = (rng.randint(1, 10), rng.randint(1, 10))
                if t not in seen:
                    seen.add(t)
                    rel.add(t, round(rng.uniform(0, 100), 3))
            db.add(rel)
        query = cycle_query(3)
        via_gj = sorted(
            (round(w, 4), a) for w, a, _ in generic_join(db, query)
        )
        via_pipeline = pipeline_signature(db, query)
        assert via_pipeline == via_gj
