"""Unit tests for the ranked Cartesian product used by anyK-rec on trees."""

import pytest

from repro.anyk.product import RankedProduct
from repro.ranking.dioid import TROPICAL


class FakeStream:
    """Stands in for a connector with a fixed ranked solution list."""

    _uid = 0

    def __init__(self, values):
        FakeStream._uid += 1
        self.uid = FakeStream._uid
        self.stage = 0
        self.values = sorted(values)

    def __len__(self):
        return len(self.values)


def ensure(stream, j):
    if j >= len(stream.values):
        return None
    value = stream.values[j]
    return (value, value, 0, j)  # (key, value, state, js)


def ranked_product(*streams):
    return RankedProduct([FakeStream(v) for v in streams], ensure, TROPICAL)


class TestRankedProduct:
    def test_singleton(self):
        product = ranked_product([3.0, 1.0, 2.0])
        got = [product.get(i)[0] for i in range(3)]
        assert got == [1.0, 2.0, 3.0]
        assert product.get(3) is None

    def test_two_streams_full_enumeration(self):
        product = ranked_product([1.0, 5.0], [10.0, 20.0, 30.0])
        sums = []
        i = 0
        while True:
            combo = product.get(i)
            if combo is None:
                break
            sums.append(combo[0])
            i += 1
        expected = sorted(a + b for a in (1.0, 5.0) for b in (10.0, 20.0, 30.0))
        assert sums == expected

    def test_no_duplicates(self):
        product = ranked_product([0.0, 0.0], [0.0, 0.0], [0.0, 0.0])
        vectors = set()
        i = 0
        while True:
            combo = product.get(i)
            if combo is None:
                break
            assert combo[1] not in vectors, "duplicate vector generated"
            vectors.add(combo[1])
            i += 1
        assert len(vectors) == 8

    def test_three_streams_order(self):
        product = ranked_product([1, 4], [2, 3], [0, 10])
        values = []
        i = 0
        while (combo := product.get(i)) is not None:
            values.append(combo[0])
            i += 1
        expected = sorted(
            a + b + c for a in (1, 4) for b in (2, 3) for c in (0, 10)
        )
        assert values == expected

    def test_memoised_outputs(self):
        product = ranked_product([1.0, 2.0], [1.0, 2.0])
        first = product.get(2)
        again = product.get(2)
        assert first is again or first == again
        assert len(product.outputs) >= 3

    def test_empty_stream_dead_product(self):
        product = RankedProduct([FakeStream([])], ensure, TROPICAL)
        assert product.get(0) is None

    def test_random_agreement(self):
        import random
        from itertools import product as iproduct

        rng = random.Random(9)
        streams = [
            sorted(round(rng.uniform(0, 10), 2) for _ in range(rng.randint(1, 4)))
            for _ in range(3)
        ]
        ranked = ranked_product(*streams)
        expected = sorted(sum(combo) for combo in iproduct(*streams))
        got = []
        i = 0
        while (combo := ranked.get(i)) is not None:
            got.append(combo[0])
            i += 1
        assert got == pytest.approx(expected)

    def test_counter_tracks_pq(self):
        from repro.util.counters import OpCounter

        counter = OpCounter()
        product = RankedProduct(
            [FakeStream([1.0, 2.0]), FakeStream([3.0])],
            ensure,
            TROPICAL,
            counter=counter,
        )
        product.get(1)
        assert counter.pq_push >= 1
        assert counter.pq_pop >= 1
