"""Zero-copy compiled cores: persistence, shared memory, vector kernels.

Covers the ``repro.dp.corebuf`` subsystem end to end:

* warm-start differential — a plan loaded from a ``.core`` file is
  bit-identical (weights, assignments, witness ids, witness tuples, in
  sequence) to a cold rebuild, for all 7 any-k variants x two
  persistable dioids x {unsharded, 1 shard, 4 shards};
* staleness — mutating a relation invalidates the entry, the rebuild
  rewrites it, and the rewritten entry hits again;
* zero-copy process builds — pool workers observe the parent's phase-A
  arrays through one shared-memory segment (same bytes, same segment
  name) and task payloads carry no arrays;
* resource hygiene — a process-mode build leaves no
  ``resource_tracker`` warnings on stderr, and ``Engine.close()``
  releases the core file's mmap;
* numpy independence — the vectorized kernels are gated behind
  ``repro.util.vec`` and the pure-``array`` fallback produces identical
  output (also for mmap-loaded cores);
* robustness — a corrupt ``.core`` file is treated as a miss, never an
  error; in-memory backends simply run without persistence.
"""

import itertools
import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.data.backend import SQLiteBackend
from repro.data.database import Database
from repro.data.relation import Relation
from repro.dp.corebuf import CoreCache, ShmPool, core_key, dioid_core_name
from repro.engine import Engine
from repro.query.builders import path_query
from repro.ranking.dioid import (
    MAX_PLUS,
    MAX_TIMES,
    NAMED_DIOIDS,
    TROPICAL,
    TieBreakingDioid,
)
from repro.util import vec

ALL_VARIANTS = [
    "take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort",
]
BASE = 64


def decoding_weights(n: int, relation_index: int) -> list[float]:
    assert n < BASE
    scale = float(BASE**relation_index)
    return [(i + 1) * scale for i in range(n)]


def decoding_database(num_relations: int, n: int, domain: int, seed: int) -> Database:
    rng = random.Random(seed)
    relations = []
    for j in range(num_relations):
        tuples = [
            (rng.randint(1, domain), rng.randint(1, domain)) for _ in range(n)
        ]
        relations.append(
            Relation(f"R{j + 1}", 2, tuples, decoding_weights(n, j))
        )
    return Database(relations)


def sqlite_database(tmp_path, tag: str, seed: int = 5) -> str:
    path = str(tmp_path / f"{tag}.db")
    backend = SQLiteBackend(path)
    for relation in decoding_database(4, 40, domain=7, seed=seed):
        backend.ingest(relation)
    backend.close()
    return path


def signature(results) -> list[tuple]:
    return [
        (
            result.weight,
            tuple(sorted(result.assignment.items())),
            result.witness_ids,
            result.witness,
        )
        for result in results
    ]


def run(engine: Engine, query, algorithm: str, k: int | None = 200, **kwargs):
    prepared = engine.prepare(query, algorithm=algorithm, **kwargs)
    iterator = prepared.iter()
    if k is not None:
        iterator = itertools.islice(iterator, k)
    return signature(iterator)


def core_stats(engine: Engine) -> dict:
    return {
        k: v for k, v in engine.stats.as_dict().items() if k.startswith("core")
    }


class TestWarmStartDifferential:
    """mmap-loaded cores are bit-identical to a cold rebuild."""

    @pytest.mark.parametrize("dioid", [TROPICAL, MAX_PLUS], ids=["tropical", "max-plus"])
    @pytest.mark.parametrize("shards", [None, 1, 4])
    def test_all_variants_bit_identical(self, tmp_path, dioid, shards):
        path = sqlite_database(tmp_path, "diff")
        query = path_query(4)
        cold = {}
        with Engine.from_backend(SQLiteBackend(path), core_cache="off") as engine:
            for variant in ALL_VARIANTS:
                cold[variant] = run(
                    engine, query, variant, dioid=dioid, shards=shards
                )
                assert cold[variant], "workload must produce answers"
        # Cold bind with persistence on: writes the entry.
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            engine.prepare(query, dioid=dioid, shards=shards).bind()
            stats = core_stats(engine)
            assert stats["core_writes"] == 1 and stats["core_hits"] == 0
        # Fresh process-equivalent: a new backend + engine, warm bind.
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            for variant in ALL_VARIANTS:
                warm = run(engine, query, variant, dioid=dioid, shards=shards)
                assert warm == cold[variant], (
                    f"{variant} warm start diverged "
                    f"(dioid={dioid!r}, shards={shards})"
                )
            stats = core_stats(engine)
            assert stats["core_hits"] == 1 and stats["core_writes"] == 0

    def test_warm_sharded_physical_reports_mmap_mode(self, tmp_path):
        path = sqlite_database(tmp_path, "mode")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            engine.prepare(query, shards=4).bind()
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            physical = engine.prepare(query, shards=4).bind()
            assert physical.mode == "mmap"
            assert physical.shard_count == 4
            assert "warm start" in " ".join(physical.notes)

    def test_warm_start_replays_stored_plans(self, tmp_path):
        path = sqlite_database(tmp_path, "boot")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            engine.prepare(query).bind()
            engine.prepare(query, shards=2).bind()
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            assert engine.warm_start() == 2
            assert core_stats(engine)["core_hits"] == 2


class TestStaleness:
    def test_mutation_invalidates_then_rewrites(self, tmp_path):
        path = sqlite_database(tmp_path, "stale")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            engine.prepare(query).bind()
            assert core_stats(engine)["core_writes"] == 1
        backend = SQLiteBackend(path)
        backend.append("R1", (1, 2), float(BASE**4))
        with Engine.from_backend(backend) as engine:
            reference = run(engine, query, "take2")
            stats = core_stats(engine)
            assert stats["core_stale"] == 1 and stats["core_hits"] == 0
            assert stats["core_writes"] == 1, "stale entry must be rewritten"
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            assert run(engine, query, "take2") == reference
            assert core_stats(engine)["core_hits"] == 1

    def test_key_excludes_non_persistable_dioids(self):
        query = path_query(3)
        tie = TieBreakingDioid(TROPICAL, 3)
        assert dioid_core_name(TROPICAL) == "tropical"
        assert dioid_core_name(MAX_PLUS) == "max-plus"
        assert dioid_core_name(MAX_TIMES) is None, "key is not the value"
        assert dioid_core_name(tie) is None
        assert core_key(query, MAX_TIMES, None) is None
        assert core_key(query, TROPICAL, None) != core_key(
            query, TROPICAL, (4, None, "range", "arrival")
        )

    def test_non_persistable_dioid_still_runs(self, tmp_path):
        path = sqlite_database(tmp_path, "npd")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            assert run(engine, query, "take2", dioid=NAMED_DIOIDS["max-times"])
            stats = core_stats(engine)
            assert stats == {
                "core_hits": 0, "core_misses": 0,
                "core_stale": 0, "core_writes": 0,
            }
            assert not os.path.exists(path + ".core")


class TestZeroCopyProcessBuild:
    def _shared_setup(self, tmp_path):
        from repro.engine.plan import plan as make_plan
        from repro.parallel import build as pbuild
        from repro.parallel.sharder import Sharder, ShardSpec

        path = sqlite_database(tmp_path, "shm")
        database = SQLiteBackend(path).database()
        query = path_query(4)
        logical = make_plan(
            query, shards=ShardSpec(2, parallel="process", workers=2)
        )
        shard_plan = Sharder(database, None).plan(logical, logical.shard, True)
        shared = pbuild.build_shared_lower(
            database, query, shard_plan.join_tree,
            logical.dioid, shard_plan.anchor_stage,
        )
        return pbuild, database, query, logical, shard_plan, shared

    def test_workers_alias_one_segment(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing

        pbuild, database, query, logical, shard_plan, shared = (
            self._shared_setup(tmp_path)
        )
        payload = pbuild.pack_worker_lower(shared)
        anchor_atom_index = shared.order[shard_plan.anchor_stage]
        anchor_name = query.atoms[anchor_atom_index].relation_name
        tasks = [(f, logical.shard.shards) for f in shard_plan.fragments]
        # Satellite: per-fragment task payloads ship fragment metadata
        # only — no arrays, no database recipe, no entry pools.
        assert all(len(pickle.dumps(task)) < 512 for task in tasks)
        shm_pool = ShmPool.create(payload)
        try:
            try:
                context = multiprocessing.get_context("fork")
                pool = ProcessPoolExecutor(
                    max_workers=2,
                    mp_context=context,
                    initializer=pbuild._init_scan_worker,
                    initargs=(
                        shm_pool.name, pbuild._database_recipe(database),
                        query, anchor_atom_index, anchor_name, logical.dioid,
                    ),
                )
            except (OSError, PermissionError, ValueError) as exc:
                pytest.skip(f"process pool unavailable: {exc!r}")
            with pool:
                try:
                    probes = [
                        pool.submit(pbuild._probe_worker_pool, 0).result(
                            timeout=60
                        )
                        for _ in range(2)
                    ]
                except (OSError, RuntimeError) as exc:
                    pytest.skip(f"process pool unavailable: {exc!r}")
        finally:
            shm_pool.destroy()
            database.close()
        for name, length, sample in probes:
            assert name == shm_pool.name, "worker must attach by name"
            assert length == len(shared.conn_min)
            assert sample == shared.conn_min[0], (
                "worker must read the parent's pool bytes in place"
            )

    def test_process_mode_build_matches_serial(self, tmp_path):
        path = sqlite_database(tmp_path, "proc")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path), core_cache="off") as engine:
            reference = run(engine, query, "take2", shards=2)
        with Engine.from_backend(SQLiteBackend(path), core_cache="off") as engine:
            prepared = engine.prepare(
                query, algorithm="take2", shards=2, shard_parallel="process"
            )
            physical = prepared.bind()
            if physical.mode != "process":
                pytest.skip(f"process pool unavailable: {physical.notes}")
            assert signature(
                itertools.islice(prepared.iter(), 200)
            ) == reference

    def test_no_resource_tracker_warnings(self, tmp_path):
        path = sqlite_database(tmp_path, "rt")
        code = (
            "import sys\n"
            "from repro.data.backend import SQLiteBackend\n"
            "from repro.engine import Engine\n"
            "from repro.query.builders import path_query\n"
            f"engine = Engine.from_backend(SQLiteBackend({path!r}))\n"
            "prepared = engine.prepare(path_query(4), shards=2,\n"
            "                          shard_parallel='process')\n"
            "physical = prepared.bind()\n"
            "print('MODE=' + physical.mode)\n"
            "engine.close()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src"))
            if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=180, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        if "MODE=process" not in proc.stdout:
            pytest.skip(f"process pool unavailable: {proc.stdout!r}")
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr


class TestNoNumpy:
    """Pure-``array`` fallback conformance (also exercised by CI no-numpy)."""

    def test_vectorized_paths_match_scalar(self, tmp_path, monkeypatch):
        path = sqlite_database(tmp_path, "nonp")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            with_numpy = {
                variant: run(engine, query, variant)
                for variant in ALL_VARIANTS
            }
        monkeypatch.setattr(vec, "np", None)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            for variant in ALL_VARIANTS:
                assert run(engine, query, variant) == with_numpy[variant]
            assert core_stats(engine)["core_hits"] == 1, (
                "mapped cores must load without numpy"
            )

    def test_sharded_build_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vec, "np", None)
        database = decoding_database(3, 30, domain=6, seed=9)
        engine = Engine(database)
        query = path_query(3)
        reference = run(engine, query, "take2")
        assert run(engine, query, "take2", shards=4) == reference


class TestRobustness:
    def test_corrupt_core_file_is_a_miss(self, tmp_path):
        path = sqlite_database(tmp_path, "corrupt")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            reference = run(engine, query, "take2")
        with open(path + ".core", "wb") as handle:
            handle.write(b"not a core file at all")
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            assert run(engine, query, "take2") == reference
            stats = core_stats(engine)
            assert stats["core_hits"] == 0
            assert stats["core_writes"] == 1, "rewritten after corruption"
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            assert run(engine, query, "take2") == reference
            assert core_stats(engine)["core_hits"] == 1

    def test_memory_backend_has_no_core_cache(self):
        engine = Engine(decoding_database(3, 20, domain=5, seed=1))
        assert engine.core_cache is None
        assert run(engine, path_query(3), "take2")

    def test_close_releases_the_mmap(self, tmp_path):
        path = sqlite_database(tmp_path, "close")
        query = path_query(4)
        with Engine.from_backend(SQLiteBackend(path)) as engine:
            engine.prepare(query).bind()
        engine = Engine.from_backend(SQLiteBackend(path))
        run(engine, query, "take2")
        assert core_stats(engine)["core_hits"] == 1
        engine.close()
        assert not engine.core_cache._maps, "close() must unmap the core file"
        os.remove(path + ".core")

    def test_explicit_core_cache_path(self, tmp_path):
        database = decoding_database(3, 20, domain=5, seed=2)
        core_path = str(tmp_path / "explicit.core")
        query = path_query(3)
        engine = Engine(database, core_cache=core_path)
        reference = run(engine, query, "take2")
        assert os.path.exists(core_path)
        engine2 = Engine(database, core_cache=CoreCache(core_path))
        assert run(engine2, query, "take2") == reference
        assert core_stats(engine2)["core_hits"] == 1
