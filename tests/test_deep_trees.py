"""Integration tests on deep and bushy join trees.

The star and path cases are covered elsewhere; these shapes force the
interesting combinations: multi-branch states *below* the root
(exercising Recursive's ranked products at depth), chains hanging off
branches (mixing suffix sharing with products), and forests of trees.
"""

import random

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.query.parser import parse_query
from tests.conftest import ALL_ALGORITHMS, brute_force, weight_signature


def random_db(names, n, domain, seed):
    rng = random.Random(seed)
    db = Database()
    for name in names:
        rel = Relation(name, 2)
        for _ in range(n):
            rel.add(
                (rng.randint(1, domain), rng.randint(1, domain)),
                round(rng.uniform(0, 50), 3),
            )
        db.add(rel)
    return db


def check(db, query):
    expected = weight_signature(brute_force(db, query))
    reference = None
    for algorithm in ALL_ALGORITHMS:
        got = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm=algorithm)
        ]
        weights = [w for w, _ in got]
        assert weights == sorted(weights), algorithm
        assert weight_signature(got) == expected, algorithm
        if reference is None:
            reference = weights
        else:
            assert weights == pytest.approx(reference), algorithm


class TestBushyTrees:
    def test_binary_tree_depth_two(self):
        # x1 splits into two subtrees, each splitting again.
        query = parse_query(
            "Q(a,b,c,d,e,f,g) :- "
            "R1(a,b), R2(b,c), R3(b,d), R4(a,e), R5(e,f), R6(e,g)"
        )
        db = random_db([f"R{i}" for i in range(1, 7)], 12, 3, seed=1)
        check(db, query)

    def test_caterpillar(self):
        # A path with a leaf hanging off every node.
        query = parse_query(
            "Q(a,b,c,d,e,f) :- R1(a,b), R2(b,c), R3(c,d), "
            "L1(a,e), L2(b,f)"
        )
        db = random_db(["R1", "R2", "R3", "L1", "L2"], 12, 3, seed=2)
        check(db, query)

    def test_branch_below_branch(self):
        # Root -> child with three sub-branches (deep products).
        query = parse_query(
            "Q(a,b,c,d,e) :- R1(a,b), R2(b,c), R3(b,d), R4(b,e)"
        )
        db = random_db(["R1", "R2", "R3", "R4"], 14, 3, seed=3)
        check(db, query)

    def test_two_component_forest_with_trees(self):
        query = parse_query(
            "Q(a,b,c,p,q,s) :- R1(a,b), R2(a,c), S1(p,q), S2(p,s)"
        )
        db = random_db(["R1", "R2", "S1", "S2"], 8, 3, seed=4)
        check(db, query)

    def test_wide_atoms_in_tree(self):
        rng = random.Random(5)
        db = Database()
        for name, arity in (("R1", 3), ("R2", 3), ("R3", 2)):
            rel = Relation(name, arity)
            for _ in range(15):
                rel.add(
                    tuple(rng.randint(1, 3) for _ in range(arity)),
                    round(rng.uniform(0, 10), 3),
                )
            db.add(rel)
        query = parse_query("Q(a,b,c,d,e) :- R1(a,b,c), R2(b,c,d), R3(c,e)")
        check(db, query)


class TestTiesInTrees:
    def test_all_equal_weights(self):
        rng = random.Random(6)
        db = Database()
        for name in ("R1", "R2", "R3"):
            rel = Relation(name, 2)
            for _ in range(8):
                rel.add((rng.randint(1, 3), rng.randint(1, 3)), 1.0)
            db.add(rel)
        query = parse_query("Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(b,d)")
        expected = weight_signature(brute_force(db, query))
        for algorithm in ALL_ALGORITHMS:
            got = weight_signature(
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(db, query, algorithm=algorithm)
            )
            assert got == expected, algorithm

    def test_two_weight_levels(self):
        rng = random.Random(7)
        db = Database()
        for name in ("R1", "R2"):
            rel = Relation(name, 2)
            for _ in range(10):
                rel.add(
                    (rng.randint(1, 3), rng.randint(1, 3)),
                    float(rng.randint(0, 1)),
                )
            db.add(rel)
        query = parse_parse = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c)")
        check(db, query)


class TestDeepChainsOfBranches:
    @pytest.mark.parametrize("depth", [2, 3])
    def test_repeated_broom(self, depth):
        # Chain of "broom" segments: x_i -> x_{i+1} with a leaf each.
        atoms = []
        names = []
        for i in range(depth):
            atoms.append(f"C{i}(x{i}, x{i + 1})")
            atoms.append(f"D{i}(x{i}, y{i})")
            names.extend([f"C{i}", f"D{i}"])
        query = parse_query(", ".join(atoms))
        db = random_db(names, 10, 3, seed=8 + depth)
        check(db, query)
