"""Tests for the synthetic workload generators and graph substitutes."""

import math

import pytest

from repro.data.generators import (
    cartesian_database,
    example6_database,
    fdb_lex_instance,
    nprr_hard_instance,
    path_of_matchings_database,
    rank_join_hard_instance,
    recursive_worst_case,
    uniform_database,
    worst_case_cycle_database,
)
from repro.data.graphs import (
    bitcoin_otc_like,
    edge_relation,
    graph_statistics,
    pagerank,
    preferential_attachment_digraph,
    twitter_like,
)


class TestUniformDatabase:
    def test_shape(self):
        db = uniform_database(3, 100, seed=1)
        assert len(db) == 3
        for name in ("R1", "R2", "R3"):
            assert len(db[name]) == 100
            assert db[name].arity == 2

    def test_domain_default_n_over_10(self):
        db = uniform_database(1, 100, seed=2)
        values = db["R1"].column_values(0) | db["R1"].column_values(1)
        assert max(values) <= 10

    def test_weights_in_range(self):
        db = uniform_database(1, 50, seed=3, weight_high=10.0)
        assert all(0.0 <= w <= 10.0 for w in db["R1"].weights)

    def test_deterministic_by_seed(self):
        a = uniform_database(2, 30, seed=7)
        b = uniform_database(2, 30, seed=7)
        assert a["R1"].tuples == b["R1"].tuples
        assert a["R1"].weights == b["R1"].weights


class TestWorstCaseCycle:
    def test_structure(self):
        db = worst_case_cycle_database(4, 10, seed=1)
        rel = db["R1"]
        assert len(rel) == 10
        hub_out = [t for t in rel.tuples if t[0] == 0]
        hub_in = [t for t in rel.tuples if t[1] == 0]
        assert len(hub_out) == 5 and len(hub_in) == 5

    def test_output_is_worst_case(self):
        # Every (0,i) x (i,0) x (0,j) x (j,0) combination forms a 4-cycle.
        from repro.enumeration.api import ranked_enumerate
        from repro.query.builders import cycle_query

        db = worst_case_cycle_database(4, 8, seed=2)
        results = list(ranked_enumerate(db, cycle_query(4), algorithm="take2"))
        # i in 1..4 choosing the hub pattern twice: 4*4 plus the two
        # all-hub... count: assignments (0,i,0,j) and (i,0,j,0).
        assert len(results) == 2 * 4 * 4


class TestAdversarialInstances:
    def test_nprr_instance_output_quadratic(self):
        from repro.enumeration.api import ranked_enumerate
        from repro.query.builders import cycle_query

        n = 6
        db = nprr_hard_instance(n, seed=1)
        results = list(ranked_enumerate(db, cycle_query(4), algorithm="lazy"))
        # (a_i, 0, c_j, 0) and (0, b_i, 0, d_j) cycles: 2 n^2 (+ corner
        # all-zero cycles are impossible since 0 never pairs with 0).
        assert len(results) == 2 * n * n

    def test_rank_join_instance_shape(self):
        db = rank_join_hard_instance(10)
        assert len(db["R"]) == 10
        assert len(db["T"]) == 10
        assert db["T"].weights.count(10_000.0) == 1  # the heavy t0

    def test_fdb_lex_instance(self):
        db = fdb_lex_instance(5)
        assert all(t[1] == 1 for t in db["R"].tuples)
        assert all(t[0] == 1 for t in db["S"].tuples)

    def test_recursive_worst_case_scales(self):
        db = recursive_worst_case(4, 3)
        assert [len(db[f"R{i}"]) for i in (1, 2, 3)] == [4, 4, 4]
        assert db["R1"].weights[0] == 100.0
        assert db["R3"].weights[0] == 1.0

    def test_example6_matches_paper(self):
        db = example6_database()
        assert db["R2"].tuples == [(10,), (20,), (30,)]
        assert db["R2"].weights == [10.0, 20.0, 30.0]

    def test_cartesian_database_weight_scale(self):
        db = cartesian_database([[1, 2]], weight_scale=[3.0])
        assert db["R1"].weights == [3.0, 6.0]

    def test_matchings_database(self):
        db = path_of_matchings_database(3, 10, seed=5)
        for name in ("R1", "R2", "R3"):
            assert db[name].tuples == [(i, i) for i in range(10)]


class TestGraphGenerators:
    def test_preferential_attachment_basic(self):
        edges = preferential_attachment_digraph(100, 400, seed=1)
        assert len(edges) == 400
        assert all(u != v for u, v in edges)
        assert len(set(edges)) == len(edges), "no parallel duplicates"
        nodes = {u for u, _ in edges} | {v for _, v in edges}
        assert max(nodes) < 100

    def test_preferential_attachment_skew(self):
        edges = preferential_attachment_digraph(500, 3000, seed=2)
        stats = graph_statistics(edge_relation("E", edges, [0.0] * len(edges)))
        # Heavy-tailed: the max degree far exceeds the average.
        assert stats["max_degree"] > 5 * stats["avg_degree"]

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment_digraph(1, 5)

    def test_pagerank_sums_to_one(self):
        edges = preferential_attachment_digraph(50, 200, seed=3)
        ranks = pagerank(50, edges)
        assert math.isclose(sum(ranks), 1.0, rel_tol=1e-6)
        assert all(r > 0 for r in ranks)

    def test_pagerank_hub_ranks_higher(self):
        # Everyone points at node 0.
        edges = [(i, 0) for i in range(1, 20)]
        ranks = pagerank(20, edges)
        assert ranks[0] == max(ranks)

    def test_bitcoin_like(self):
        rel = bitcoin_otc_like(num_nodes=300, num_edges=1500, seed=4)
        assert len(rel) == 1500
        assert all(-10 <= w <= 10 and w != 0 for w in rel.weights)

    def test_twitter_like_weights_are_pagerank_sums(self):
        rel = twitter_like(num_nodes=200, num_edges=800, seed=5)
        assert len(rel) == 800
        assert all(w > 0 for w in rel.weights)

    def test_graph_statistics_shape(self):
        rel = edge_relation("E", [(0, 1), (1, 2), (0, 2)], [1, 1, 1])
        stats = graph_statistics(rel)
        assert stats["nodes"] == 3
        assert stats["edges"] == 3
        assert stats["max_degree"] == 2
        assert stats["avg_degree"] == 2.0
