"""Tests for atoms, conjunctive queries, the parser, and query builders."""

import pytest

from repro.query.atom import Atom
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query


class TestAtom:
    def test_basic(self):
        a = Atom("R", ("x", "y"))
        assert a.arity == 2
        assert a.variable_set() == {"x", "y"}
        assert not a.has_repeated_variables()
        assert repr(a) == "R(x, y)"

    def test_repeated_variables(self):
        a = Atom("R", ("x", "x", "y"))
        assert a.has_repeated_variables()
        assert a.satisfies_repeats((1, 1, 2))
        assert not a.satisfies_repeats((1, 2, 2))

    def test_positions_of(self):
        a = Atom("R", ("x", "y", "z"))
        assert a.positions_of(["z", "x"]) == (2, 0)

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("R", ())

    def test_equality_and_hash(self):
        assert Atom("R", ("x",)) == Atom("R", ("x",))
        assert Atom("R", ("x",)) != Atom("S", ("x",))
        assert hash(Atom("R", ("x", "y"))) == hash(Atom("R", ("x", "y")))


class TestConjunctiveQuery:
    def test_variables_ordered_by_appearance(self):
        q = ConjunctiveQuery(None, [Atom("R", ("b", "a")), Atom("S", ("a", "c"))])
        assert q.variables == ("b", "a", "c")
        assert q.head == ("b", "a", "c")
        assert q.is_full()

    def test_projection_detection(self):
        q = ConjunctiveQuery(("a",), [Atom("R", ("a", "b"))])
        assert not q.is_full()
        assert q.existential_variables() == ("b",)

    def test_head_validation(self):
        with pytest.raises(ValueError, match="not in body"):
            ConjunctiveQuery(("z",), [Atom("R", ("x",))])
        with pytest.raises(ValueError, match="distinct"):
            ConjunctiveQuery(("x", "x"), [Atom("R", ("x",))])
        with pytest.raises(ValueError, match="at least one atom"):
            ConjunctiveQuery(None, [])

    def test_self_join_detection(self):
        q = ConjunctiveQuery(None, [Atom("E", ("x", "y")), Atom("E", ("y", "z"))])
        assert q.has_self_joins()
        q2 = ConjunctiveQuery(None, [Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
        assert not q2.has_self_joins()

    def test_acyclicity(self):
        assert path_query(4).is_acyclic()
        assert star_query(5).is_acyclic()
        assert not cycle_query(3).is_acyclic()
        assert not cycle_query(6).is_acyclic()

    def test_free_connex(self):
        # Q(y1) :- R(y1, y2) is free-connex.
        q = ConjunctiveQuery(("x",), [Atom("R", ("x", "y"))])
        assert q.is_free_connex()
        # The matrix-multiplication query Q(a, c) :- R(a,b), S(b,c) is not.
        q2 = ConjunctiveQuery(
            ("a", "c"), [Atom("R", ("a", "b")), Atom("S", ("b", "c"))]
        )
        assert not q2.is_free_connex()
        # Full acyclic queries are trivially free-connex.
        assert path_query(3).is_free_connex()
        # Cyclic queries are not free-connex.
        assert not cycle_query(4).is_free_connex()


class TestParser:
    def test_with_head(self):
        q = parse_query("Q(x, y) :- R(x, z), S(z, y)")
        assert q.head == ("x", "y")
        assert q.num_atoms == 2
        assert q.atoms[0] == Atom("R", ("x", "z"))

    def test_without_head_is_full(self):
        q = parse_query("R(x, z), S(z, y)")
        assert q.is_full()
        assert q.head == ("x", "z", "y")

    def test_self_join_parse(self):
        q = parse_query("E(x, y), E(y, z)")
        assert q.has_self_joins()

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_query("Q(x) :- ")
        with pytest.raises(ValueError):
            parse_query("Q(x) :- R(x) S(x)")
        with pytest.raises(ValueError):
            parse_query("Q(x), P(y) :- R(x, y)")

    def test_whitespace_tolerance(self):
        q = parse_query("  Q( x ,y )  :-  R( x , y )  ")
        assert q.head == ("x", "y")


class TestBuilders:
    def test_path_query_shape(self):
        q = path_query(3)
        assert q.name == "QP3"
        assert [a.relation_name for a in q.atoms] == ["R1", "R2", "R3"]
        assert q.atoms[1].variables == ("x2", "x3")
        assert q.is_full() and q.is_acyclic()

    def test_star_query_shape(self):
        q = star_query(4)
        assert all(a.variables[0] == "x1" for a in q.atoms)
        assert len(set(a.variables[1] for a in q.atoms)) == 4

    def test_cycle_query_shape(self):
        q = cycle_query(4)
        assert q.atoms[-1].variables == ("x4", "x1")
        assert not q.is_acyclic()

    def test_self_join_builders(self):
        q = path_query(3, relation="E")
        assert all(a.relation_name == "E" for a in q.atoms)
        assert q.has_self_joins()

    def test_validation(self):
        with pytest.raises(ValueError):
            path_query(0)
        with pytest.raises(ValueError):
            cycle_query(2)
        with pytest.raises(ValueError):
            star_query(0)
