"""Complexity-shape assertions via operation counters (Fig 5, Thm 11, Prop 13).

Wall-clock benchmarks live under ``benchmarks/``; here we assert the
*counted* behaviour that drives the paper's complexity table:

* All floods the candidate queue; Take2 pushes O(1) per stage.
* Recursive reuses ranked suffixes: its total priority-queue traffic for
  the full output is bounded by the number of suffixes (Theorem 11),
  beating the Θ(out * log out) comparisons of a batch sort in shape.
* On the Fig 6 instance, Recursive's first n results each trigger a full
  chain of priority-queue operations (Proposition 13).
* The group fast path and the monoid fallback of Section 6.2 produce
  identical output and identical candidate counts.
"""

import math

import pytest

from repro.anyk.base import make_enumerator
from repro.anyk.partition import AnyKPart
from repro.anyk.strategies import ALGORITHMS, Take2Strategy
from repro.data.generators import (
    recursive_worst_case,
    uniform_database,
)
from repro.dp.builder import build_tdp_for_query
from repro.query.builders import path_query, star_query
from repro.query.parser import parse_query
from repro.util.counters import OpCounter


def product_query(width):
    atoms = ", ".join(f"R{i}(v{i})" for i in range(1, width + 1))
    head = ", ".join(f"v{i}" for i in range(1, width + 1))
    return parse_query(f"Q({head}) :- {atoms}")


class TestCandidateTraffic:
    def test_all_floods_take2_does_not(self):
        # Large fan-out (n/domain = 20 partners per join value) makes
        # All's per-expansion flood clearly visible.
        db = uniform_database(3, 80, domain_size=4, seed=1)
        query = path_query(3)
        counts = {}
        for name in ("all", "take2"):
            counter = OpCounter()
            tdp = build_tdp_for_query(db, query)
            enum = make_enumerator(tdp, name, counter=counter)
            enum.top(80)
            counts[name] = counter.candidates_created
        assert counts["all"] > 3 * counts["take2"]

    def test_take2_pushes_at_most_two_per_expansion(self):
        db = uniform_database(3, 50, domain_size=5, seed=2)
        tdp = build_tdp_for_query(db, path_query(3))
        counter = OpCounter()
        enum = make_enumerator(tdp, "take2", counter=counter)
        enum.top(100)
        assert counter.candidates_created <= 2 * counter.expansions + 1

    def test_peak_candidates_all_vs_lazy(self):
        db = uniform_database(3, 60, domain_size=6, seed=3)
        tdp = build_tdp_for_query(db, path_query(3))
        peaks = {}
        for name in ("all", "lazy"):
            enum = AnyKPart(tdp, strategy=ALGORITHMS[name]())
            enum.top(50)
            peaks[name] = enum.peak_candidates()
        assert peaks["all"] > peaks["lazy"]


class TestRecursiveReuse:
    def test_pq_ops_bounded_by_suffix_count(self):
        """Theorem 11's accounting: one pop per distinct suffix."""
        width, n = 3, 8
        db = recursive_worst_case(n, width)
        query = product_query(width)
        tdp = build_tdp_for_query(db, query)
        counter = OpCounter()
        enum = make_enumerator(tdp, "recursive", counter=counter)
        out = list(enum)
        assert len(out) == n ** width
        # Number of suffixes: sum over stages of paths from that stage =
        # n^3 + n^2 + n for the serial view; our forest view is bounded
        # by the same quantity (each connector solution popped once).
        suffix_bound = n ** 3 + n ** 2 + n
        assert counter.pq_pop <= 2 * suffix_bound

    def test_recursive_cheaper_than_batch_comparisons_for_full_output(self):
        """Thm 11: Recursive's PQ traffic grows like |out|, batch sorting
        like |out| log |out| — compare the actual counted quantities."""
        width, n = 3, 7
        db = recursive_worst_case(n, width)
        query = product_query(width)
        tdp = build_tdp_for_query(db, query)
        counter = OpCounter()
        enum = make_enumerator(tdp, "recursive", counter=counter)
        out_size = len(list(enum))
        batch_comparisons = out_size * math.log2(out_size)
        assert counter.total_pq_ops() < batch_comparisons

    def test_shared_suffix_memoisation(self):
        """Two parents with the same join value share suffix rankings."""
        db = uniform_database(2, 40, domain_size=2, seed=4)
        tdp = build_tdp_for_query(db, path_query(2))
        from repro.anyk.recursive import Recursive

        enum = Recursive(tdp)
        list(enum)
        # At most one solutions list per connector (sharing worked if
        # the number of memo lists is the number of connectors, not the
        # number of states).
        assert len(enum._solutions) <= tdp.num_connectors

    def test_prop13_first_n_results_use_distinct_last_tuples(self):
        n = 6
        db = recursive_worst_case(n, 3)
        query = product_query(3)
        tdp = build_tdp_for_query(db, query)
        enum = make_enumerator(tdp, "recursive")
        first = enum.top(n)
        last_stage_values = [r.assignment["v3"] for r in first]
        assert len(set(last_stage_values)) == n, (
            "Fig 6 construction: each of the first n results uses a "
            "different tuple of the last relation"
        )


class TestInverseAblation:
    """Section 6.2: group fast path vs monoid fallback."""

    @pytest.mark.parametrize("shape", ["path", "star", "broom"])
    def test_same_results_both_paths(self, shape):
        db = uniform_database(4, 20, domain_size=3, seed=5)
        if shape == "path":
            query = path_query(4)
        elif shape == "star":
            query = star_query(4)
        else:
            query = parse_query(
                "Q(a,b,c,d,e) :- R1(a,b), R2(b,c), R3(b,d), R4(d,e)"
            )
        tdp = build_tdp_for_query(db, query)
        with_inverse = AnyKPart(tdp, strategy=Take2Strategy(), use_inverse=True)
        without = AnyKPart(tdp, strategy=Take2Strategy(), use_inverse=False)
        got_inv = [(round(r.weight, 6), r.states) for r in with_inverse]
        got_mono = [(round(r.weight, 6), r.states) for r in without]
        assert got_inv == got_mono

    def test_same_candidate_counts(self):
        db = uniform_database(3, 25, domain_size=3, seed=6)
        tdp = build_tdp_for_query(db, star_query(3))
        counters = []
        for use_inverse in (True, False):
            counter = OpCounter()
            enum = AnyKPart(
                tdp,
                strategy=Take2Strategy(),
                counter=counter,
                use_inverse=use_inverse,
            )
            list(enum)
            counters.append(counter.candidates_created)
        assert counters[0] == counters[1]

    def test_forcing_inverse_without_support_raises(self):
        from repro.ranking.dioid import MAX_TIMES

        db = uniform_database(2, 10, domain_size=2, seed=7)
        tdp = build_tdp_for_query(db, path_query(2), dioid=MAX_TIMES)
        with pytest.raises(ValueError, match="no inverse"):
            AnyKPart(tdp, use_inverse=True)


class TestDelayShape:
    def test_ttf_work_much_smaller_than_ttl_work(self):
        """Any-k returns the top result with a fraction of total work."""
        db = uniform_database(4, 60, domain_size=6, seed=8)
        query = path_query(4)
        tdp = build_tdp_for_query(db, query)
        counter = OpCounter()
        enum = make_enumerator(tdp, "lazy", counter=counter)
        next(iter(enum))
        first_ops = counter.total_pq_ops()
        remaining = sum(1 for _ in enum)
        total_ops = counter.total_pq_ops()
        assert remaining > 100
        assert first_ops * 20 < total_ops, (
            "TTF work must be a small fraction of TTL work"
        )
