"""Shard conformance: sharded enumeration is bit-identical to unsharded.

The sweep covers all 7 any-k variants x {memory, sqlite} backends x
{1, 2, 4, 7} shard counts, including shard counts that leave fragments
empty, on workloads whose weights are *witness-decoding* (every answer's
weight sum is unique), so the ranked order is unique and the comparison
is exact: same weights, same assignments, same witness ids, same
witness tuples, in the same sequence.

Weight-tie behaviour is covered separately: under the ``canonical``
tie-break the (weight, assignment) sequence must be identical for every
shard count (the Section 6.3 tie-breaking dioid makes the order
partition-independent), and under the default ``arrival`` tie-break the
weight sequence and the per-tie-group answer sets must match the
unsharded run.

A hypothesis sweep drives randomized shapes/sizes/weights through the
same assertions.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.backend import SQLiteBackend
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import Engine
from repro.query.builders import path_query, star_query
from repro.query.parser import parse_query
from repro.ranking.dioid import MAX_PLUS, MAX_TIMES

ALL_VARIANTS = ["take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort"]
SHARD_COUNTS = [1, 2, 4, 7]

#: Weight base making every answer's weight sum decode its witness:
#: tuple i of relation j weighs (i+1) * BASE**j, and with per-relation
#: cardinalities < BASE all sums are distinct and float-exact (< 2^53).
BASE = 64


def decoding_weights(n: int, relation_index: int) -> list[float]:
    assert n < BASE
    scale = float(BASE**relation_index)
    return [(i + 1) * scale for i in range(n)]


def decoding_database(num_relations: int, n: int, domain: int, seed: int) -> Database:
    rng = random.Random(seed)
    relations = []
    for j in range(num_relations):
        tuples = [
            (rng.randint(1, domain), rng.randint(1, domain)) for _ in range(n)
        ]
        relations.append(
            Relation(f"R{j + 1}", 2, tuples, decoding_weights(n, j))
        )
    return Database(relations)


def signature(results) -> list[tuple]:
    return [
        (
            result.weight,
            tuple(sorted(result.assignment.items())),
            result.witness_ids,
            result.witness,
        )
        for result in results
    ]


def run(engine: Engine, query, algorithm: str, k: int | None = None, **prepare_kwargs):
    prepared = engine.prepare(query, algorithm=algorithm, **prepare_kwargs)
    iterator = prepared.iter()
    if k is not None:
        iterator = itertools.islice(iterator, k)
    return signature(iterator)


def open_database(database: Database, backend: str, tmp_path, tag: str) -> Database:
    if backend == "memory":
        return database
    sqlite = SQLiteBackend(str(tmp_path / f"{tag}.db"))
    for relation in database:
        sqlite.ingest(relation)
    return sqlite.database()


class TestExactConformanceSweep:
    """7 variants x 2 backends x {1,2,4,7} shards, bit-exact."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_path_query_all_shard_counts(self, tmp_path, backend, variant):
        database = open_database(
            decoding_database(3, 40, domain=7, seed=5), backend, tmp_path, variant
        )
        engine = Engine(database)
        query = path_query(3)
        reference = run(engine, query, variant)
        assert reference, "workload must produce answers"
        for shards in SHARD_COUNTS:
            sharded = run(engine, query, variant, shards=shards)
            assert sharded == reference, (
                f"{variant} over {backend} diverged at shards={shards}"
            )

    @pytest.mark.parametrize("variant", ["take2", "recursive", "batch"])
    def test_star_query_all_shard_counts(self, tmp_path, variant):
        database = decoding_database(3, 30, domain=5, seed=11)
        engine = Engine(database)
        query = star_query(3)
        reference = run(engine, query, variant)
        assert reference
        for shards in SHARD_COUNTS:
            assert run(engine, query, variant, shards=shards) == reference

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_max_plus_dioid(self, shards):
        database = decoding_database(3, 25, domain=5, seed=23)
        engine = Engine(database)
        query = path_query(3)
        reference = run(engine, query, "take2", dioid=MAX_PLUS)
        assert reference
        assert (
            run(engine, query, "take2", dioid=MAX_PLUS, shards=shards)
            == reference
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_generic_dioid_object_path(self, shards):
        """Non-``key_is_value`` dioids shard through the object builder."""
        database = decoding_database(3, 20, domain=5, seed=31)
        # max-times needs positive multiplicative weights.
        for relation in database:
            relation.weights = [1.0 + (w % 97) / 97.0 for w in relation.weights]
        engine = Engine(database)
        query = path_query(3)
        reference = run(engine, query, "take2", dioid=MAX_TIMES)
        assert reference
        sharded = run(engine, query, "take2", dioid=MAX_TIMES, shards=shards)
        prepared = engine.prepare(query, dioid=MAX_TIMES, shards=shards)
        assert prepared.bind().fragments[0].compiled is None
        assert sharded == reference

    @pytest.mark.parametrize("shards", [2, 4])
    def test_projection_query(self, shards):
        database = decoding_database(3, 30, domain=6, seed=41)
        engine = Engine(database)
        query = parse_query("Q(x1, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)")
        reference = run(engine, query, "take2")
        assert reference
        assert run(engine, query, "take2", shards=shards) == reference

    def test_hash_partitioning_matches(self, tmp_path):
        database = open_database(
            decoding_database(3, 40, domain=7, seed=5), "sqlite", tmp_path, "hash"
        )
        engine = Engine(database)
        query = path_query(3)
        reference = run(engine, query, "take2")
        for shards in (2, 5):
            assert (
                run(engine, query, "take2", shards=shards, shard_strategy="hash")
                == reference
            )

    def test_self_join_anchor(self):
        """Per-stage restriction keeps self-joins shardable (arrival mode).

        One weight vector serves both atoms, so symmetric witness pairs
        tie by construction (``w_i + w_j == w_j + w_i``) — the exact
        comparison relaxes to weight sequence + answer multiset.
        """
        rng = random.Random(3)
        edges = [(rng.randint(1, 8), rng.randint(1, 8)) for _ in range(35)]
        database = Database(
            [Relation("E", 2, edges, decoding_weights(35, 0))]
        )
        engine = Engine(database)
        query = parse_query("Q(x, y, z) :- E(x, y), E(y, z)")
        reference = run(engine, query, "take2")
        assert reference
        for shards in (2, 4):
            sharded = run(engine, query, "take2", shards=shards)
            assert [r[0] for r in sharded] == [r[0] for r in reference]
            assert sorted(sharded) == sorted(reference)


class TestEmptyAndEdgeFragments:
    def test_more_shards_than_rows(self):
        database = decoding_database(2, 5, domain=3, seed=7)
        engine = Engine(database)
        query = path_query(2)
        reference = run(engine, query, "take2")
        prepared = engine.prepare(query, shards=7)
        assert signature(prepared.iter()) == reference
        physical = prepared.bind()
        assert physical.shard_count == 7
        assert physical.shard_stats()["empty_fragments"] >= 2

    def test_fragment_with_all_dead_rows(self):
        """A fragment whose anchor rows all fail to join is empty."""
        r1 = Relation(
            "R1", 2,
            [(1, 1), (2, 1), (3, 99), (4, 99)],   # last two never join
            [1.0, 2.0, 3.0, 4.0],
        )
        r2 = Relation("R2", 2, [(1, 5)], [10.0])
        engine = Engine(Database([r1, r2]))
        query = path_query(2)
        reference = run(engine, query, "take2")
        assert len(reference) == 2
        prepared = engine.prepare(query, shards=2)
        assert signature(prepared.iter()) == reference
        stats = prepared.bind().shard_stats()
        assert stats["empty_fragments"] == 1
        assert stats["fragment_states"] == [2, 0]

    def test_globally_empty_output(self):
        r1 = Relation("R1", 2, [(1, 1)], [1.0])
        r2 = Relation("R2", 2, [(9, 9)], [1.0])
        engine = Engine(Database([r1, r2]))
        for shards in (1, 3):
            prepared = engine.prepare(path_query(2), shards=shards)
            assert list(prepared.iter()) == []

    def test_empty_anchor_relation(self):
        r1 = Relation("R1", 2)
        r2 = Relation("R2", 2, [(1, 2)], [1.0])
        engine = Engine(Database([r1, r2]))
        prepared = engine.prepare(path_query(2), shards=3)
        assert list(prepared.iter()) == []


class TestTieBehaviour:
    def _tie_database(self, seed: int = 5) -> Database:
        rng = random.Random(seed)
        return Database(
            [
                Relation(
                    f"R{j}", 2,
                    [(rng.randint(1, 5), rng.randint(1, 5)) for _ in range(30)],
                    [float(rng.randint(0, 2)) for _ in range(30)],
                )
                for j in (1, 2, 3)
            ]
        )

    @pytest.mark.parametrize("variant", ["take2", "recursive", "eager"])
    def test_canonical_order_is_shard_count_independent(self, variant):
        """The canonical (weight, assignment) sequence never depends on N."""
        engine = Engine(self._tie_database())
        query = path_query(3)
        sequences = {}
        witness_multisets = {}
        for shards in SHARD_COUNTS:
            results = list(
                engine.prepare(
                    query, algorithm=variant, shards=shards,
                    shard_tie_break="canonical",
                ).iter()
            )
            sequences[shards] = [
                (r.weight, tuple(sorted(r.assignment.items()))) for r in results
            ]
            witness_multisets[shards] = sorted(
                (r.weight, r.witness_ids) for r in results
            )
        for shards in SHARD_COUNTS[1:]:
            assert sequences[shards] == sequences[1]
            assert witness_multisets[shards] == witness_multisets[1]

    def test_canonical_matches_legacy_weights_and_answers(self):
        engine = Engine(self._tie_database())
        query = path_query(3)
        legacy = list(engine.prepare(query).iter())
        canonical = list(
            engine.prepare(query, shards=4, shard_tie_break="canonical").iter()
        )
        assert [r.weight for r in canonical] == [r.weight for r in legacy]
        assert sorted(
            (r.weight, tuple(sorted(r.assignment.items()))) for r in canonical
        ) == sorted(
            (r.weight, tuple(sorted(r.assignment.items()))) for r in legacy
        )

    def test_arrival_mode_tie_groups_match(self):
        """Arrival mode: same weight sequence, same per-tie-group answers."""
        engine = Engine(self._tie_database(seed=13))
        query = path_query(3)
        legacy = list(engine.prepare(query).iter())
        sharded = list(engine.prepare(query, shards=3).iter())
        assert [r.weight for r in sharded] == [r.weight for r in legacy]
        assert sorted(signature(sharded)) == sorted(signature(legacy))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shape=st.sampled_from(["path", "star"]),
    size=st.integers(2, 3),
    n=st.integers(1, 45),
    domain=st.integers(2, 8),
    shards=st.sampled_from([2, 3, 5]),
    variant=st.sampled_from(["take2", "recursive", "batch"]),
)
def test_hypothesis_sharded_equals_unsharded(
    seed, shape, size, n, domain, shards, variant
):
    """Randomized sweep: exact equality under witness-decoding weights."""
    rng = random.Random(seed)
    relations = []
    for j in range(size):
        tuples = [
            (rng.randint(1, domain), rng.randint(1, domain)) for _ in range(n)
        ]
        relations.append(Relation(f"R{j + 1}", 2, tuples, decoding_weights(n, j)))
    database = Database(relations)
    query = path_query(size) if shape == "path" else star_query(size)
    engine = Engine(database)
    reference = run(engine, query, variant)
    assert run(engine, query, variant, shards=shards) == reference


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 30),
    domain=st.integers(2, 5),
    weight_levels=st.integers(1, 3),
    shards=st.sampled_from([2, 4]),
)
def test_hypothesis_ties_canonical_independent(
    seed, n, domain, weight_levels, shards
):
    """Randomized tie-heavy data: canonical order independent of N."""
    rng = random.Random(seed)
    relations = [
        Relation(
            f"R{j}", 2,
            [(rng.randint(1, domain), rng.randint(1, domain)) for _ in range(n)],
            [float(rng.randint(0, weight_levels)) for _ in range(n)],
        )
        for j in (1, 2)
    ]
    engine = Engine(Database(relations))
    query = path_query(2)

    def canonical_sequence(num_shards: int):
        return [
            (r.weight, tuple(sorted(r.assignment.items())))
            for r in engine.prepare(
                query, shards=num_shards, shard_tie_break="canonical"
            ).iter()
        ]

    assert canonical_sequence(shards) == canonical_sequence(1)
