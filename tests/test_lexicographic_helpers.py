"""Tests for the lexicographic-order convenience constructors."""

import pytest

from repro.anyk.base import make_enumerator
from repro.data.database import Database
from repro.data.generators import fdb_lex_instance, uniform_database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp_for_query
from repro.query.builders import path_query
from repro.query.parser import parse_query
from repro.ranking.lexicographic import (
    attribute_lexicographic,
    relation_lexicographic,
)


class TestRelationLexicographic:
    def test_order_by_relation_weights(self):
        r1 = Relation("R1", 2, [(1, 1), (2, 1)], [5.0, 1.0])
        r2 = Relation("R2", 2, [(1, 7), (1, 8)], [1.0, 2.0])
        db = Database([r1, r2])
        query = path_query(2)
        dioid, lift = relation_lexicographic(query)
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        got = [r.weight for r in make_enumerator(tdp, "take2")]
        assert got == [(1.0, 1.0), (1.0, 2.0), (5.0, 1.0), (5.0, 2.0)]

    def test_r1_dominates_r2(self):
        # Even a huge R2 weight cannot beat a smaller R1 weight.
        r1 = Relation("R1", 2, [(1, 1), (2, 1)], [1.0, 2.0])
        r2 = Relation("R2", 2, [(1, 7)], [1000.0])
        db = Database([r1, r2])
        query = path_query(2)
        dioid, lift = relation_lexicographic(query)
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        first = next(iter(make_enumerator(tdp, "lazy")))
        assert first.assignment["x1"] == 1

    def test_matches_brute_force_order(self):
        db = uniform_database(3, 15, domain_size=3, seed=1)
        query = path_query(3)
        dioid, lift = relation_lexicographic(query)
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        got = [r.weight for r in make_enumerator(tdp, "take2")]
        assert got == sorted(got)
        # Each vector component equals the corresponding witness weight.
        for result in make_enumerator(
            build_tdp_for_query(db, query, dioid=dioid, lift=lift), "lazy"
        ):
            expected = tuple(
                db[a.relation_name].weights[tid]
                for a, tid in zip(query.atoms, result.witness_ids)
            )
            assert result.weight == pytest.approx(expected)


class TestAttributeLexicographic:
    def test_fig18_order(self):
        n = 5
        db = fdb_lex_instance(n)
        db.relations["R1"] = db["R"].rename("R1")
        db.relations["R2"] = db["S"].rename("R2")
        query = path_query(2)
        dioid, lift = attribute_lexicographic(query, ["x1", "x3", "x2"])
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        outputs = [
            (r.assignment["x1"], r.assignment["x3"], r.assignment["x2"])
            for r in make_enumerator(tdp, "take2")
        ]
        assert outputs == sorted(outputs)
        assert len(outputs) == n * n

    def test_partial_variable_list(self):
        db = uniform_database(2, 20, domain_size=3, seed=2)
        query = path_query(2)
        dioid, lift = attribute_lexicographic(query, ["x3"])
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        x3_values = [
            r.assignment["x3"] for r in make_enumerator(tdp, "lazy")
        ]
        assert x3_values == sorted(x3_values)

    def test_shared_variable_contributed_once(self):
        # x2 appears in both atoms; its value must enter the vector once.
        r1 = Relation("R1", 2, [(1, 4)], [0.0])
        r2 = Relation("R2", 2, [(4, 9)], [0.0])
        db = Database([r1, r2])
        query = path_query(2)
        dioid, lift = attribute_lexicographic(query, ["x2"])
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        result = next(iter(make_enumerator(tdp, "take2")))
        assert result.weight == (4.0,)

    def test_unknown_variable_rejected(self):
        query = path_query(2)
        with pytest.raises(ValueError, match="unknown variables"):
            attribute_lexicographic(query, ["zz"])

    def test_duplicate_variable_rejected(self):
        query = path_query(2)
        with pytest.raises(ValueError, match="must not repeat"):
            attribute_lexicographic(query, ["x1", "x1"])

    def test_agreement_with_sorted_outputs(self):
        db = uniform_database(2, 25, domain_size=4, seed=3)
        query = parse_query("Q(a, b, c) :- R1(a, b), R2(b, c)")
        dioid, lift = attribute_lexicographic(query, ["c", "a"])
        tdp = build_tdp_for_query(db, query, dioid=dioid, lift=lift)
        got = [
            (r.assignment["c"], r.assignment["a"], r.assignment["b"])
            for r in make_enumerator(tdp, "recursive")
        ]
        assert [(c, a) for c, a, _ in got] == sorted((c, a) for c, a, _ in got)
