"""Unit tests for the shared ranked-merge core (`repro.anyk.merge`).

The core is consumed by two callers — the UT-DP union enumerator and
the parallel layer's shard merge — so its contract is pinned directly:
minimum-first order across members, insertion-sequence tie-breaking,
consecutive-duplicate elimination, counter attribution, per-member emit
counts, and the unordered concatenation degenerate.
"""

import pytest

from repro.anyk.base import Enumerator, RankedResult
from repro.anyk.merge import ConcatenatedStreams, RankedMerge
from repro.anyk.union import UnionEnumerator
from repro.parallel.merge import ShardConcat, ShardMerge
from repro.util.counters import OpCounter


class ListStream(Enumerator):
    """A canned member stream: yields prepared results in order."""

    def __init__(self, items):
        self._items = list(items)
        self._pos = 0

    def _next_result(self):
        if self._pos >= len(self._items):
            return None
        result = self._items[self._pos]
        self._pos += 1
        return result


def result(key, payload=None):
    r = RankedResult.__new__(RankedResult)
    r.weight = key
    r.key = key
    r.states = (payload,)
    r.tdp = None
    return r


def keys(merge):
    return [r.key for r in merge]


class TestRankedMerge:
    def test_merges_minimum_first(self):
        merge = RankedMerge(
            [
                ListStream([result(1.0), result(4.0), result(9.0)]),
                ListStream([result(2.0), result(3.0)]),
                ListStream([result(0.5)]),
            ]
        )
        assert keys(merge) == [0.5, 1.0, 2.0, 3.0, 4.0, 9.0]

    def test_exact_ties_break_by_insertion_sequence(self):
        merge = RankedMerge(
            [
                ListStream([result(1.0, "a1"), result(1.0, "a2")]),
                ListStream([result(1.0, "b1")]),
            ]
        )
        # Seeding order: a1 (seq 1), b1 (seq 2); a2 refills after a1 pops.
        assert [r.states[0] for r in merge] == ["a1", "b1", "a2"]

    def test_empty_members_are_harmless(self):
        merge = RankedMerge(
            [ListStream([]), ListStream([result(2.0)]), ListStream([])]
        )
        assert keys(merge) == [2.0]
        assert merge.member_counts == [0, 1, 0]

    def test_no_members(self):
        merge = RankedMerge([])
        assert keys(merge) == []

    def test_member_counts_attribution(self):
        merge = RankedMerge(
            [
                ListStream([result(1.0), result(5.0)]),
                ListStream([result(2.0), result(3.0), result(4.0)]),
            ]
        )
        list(merge)
        assert merge.member_counts == [2, 3]

    def test_counter_attribution(self):
        counter = OpCounter()
        merge = RankedMerge(
            [ListStream([result(1.0), result(2.0)]), ListStream([result(3.0)])],
            counter=counter,
        )
        out = list(merge)
        assert counter.pq_push == 3
        assert counter.pq_pop == 3
        assert counter.results == len(out) == 3

    def test_count_results_off(self):
        counter = OpCounter()
        merge = RankedMerge(
            [ListStream([result(1.0)])], counter=counter, count_results=False
        )
        list(merge)
        assert counter.results == 0
        assert counter.pq_pop == 1

    def test_dedup_drops_consecutive_duplicates(self):
        merge = RankedMerge(
            [
                ListStream([result(1.0, "x"), result(2.0, "y")]),
                ListStream([result(1.0, "x")]),
            ],
            dedup=True,
            identity=lambda r: r.states[0],
        )
        assert [r.states[0] for r in merge] == ["x", "y"]

    def test_custom_key_function(self):
        merge = RankedMerge(
            [ListStream([result(1.0, "a")]), ListStream([result(2.0, "b")])],
            key=lambda r: -r.key,  # invert the order
        )
        assert [r.states[0] for r in merge] == ["b", "a"]

    def test_union_enumerator_is_the_merge_core(self):
        assert issubclass(UnionEnumerator, RankedMerge)
        union = UnionEnumerator(
            [ListStream([result(1.0, "x")]), ListStream([result(1.0, "x")])],
            identity=lambda r: r.states[0],
        )
        assert [r.states[0] for r in union] == ["x"]  # dedup on by default


class TestConcatenatedStreams:
    def test_chains_members_in_order(self):
        concat = ConcatenatedStreams(
            [
                ListStream([result(9.0), result(1.0)]),
                ListStream([]),
                ListStream([result(5.0)]),
            ]
        )
        assert keys(concat) == [9.0, 1.0, 5.0]
        assert concat.member_counts == [2, 0, 1]


class TestShardMergeConfiguration:
    def test_shard_merge_leaves_result_counting_to_members(self):
        counter = OpCounter()
        merge = ShardMerge([ListStream([result(1.0)])], counter=counter)
        list(merge)
        assert counter.results == 0  # members count their own emissions
        assert merge.shard_counts() == [1]

    def test_shard_merge_never_dedups(self):
        merge = ShardMerge(
            [ListStream([result(1.0, "x")]), ListStream([result(1.0, "x")])]
        )
        assert len(list(merge)) == 2

    def test_shard_concat_counts(self):
        concat = ShardConcat(
            [ListStream([result(1.0)]), ListStream([result(2.0), result(3.0)])]
        )
        list(concat)
        assert concat.shard_counts() == [1, 2]


class TestEnumeratorProtocol:
    def test_step_and_exhausted(self):
        merge = RankedMerge([ListStream([result(1.0), result(2.0)])])
        assert [r.key for r in merge.step(1)] == [1.0]
        assert not merge.exhausted
        assert [r.key for r in merge.step(5)] == [2.0]
        assert merge.exhausted

    def test_top(self):
        merge = RankedMerge(
            [ListStream([result(3.0)]), ListStream([result(1.0)])]
        )
        assert [r.key for r in merge.top(1)] == [1.0]


@pytest.mark.parametrize("merge_cls", [RankedMerge, ShardMerge])
def test_determinism_across_runs(merge_cls):
    def build():
        return merge_cls(
            [
                ListStream([result(1.0, i) for i in range(5)]),
                ListStream([result(1.0, 10 + i) for i in range(5)]),
            ]
        )

    first = [r.states[0] for r in build()]
    second = [r.states[0] for r in build()]
    assert first == second
