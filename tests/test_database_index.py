"""Unit tests for Database and HashIndex."""

import pytest

from repro.data.database import Database
from repro.data.index import HashIndex
from repro.data.relation import Relation


def _rel(name, tuples):
    return Relation(name, len(tuples[0]), tuples, [0.0] * len(tuples))


class TestDatabase:
    def test_add_and_get(self):
        db = Database()
        db.add(_rel("R", [(1, 2)]))
        assert db["R"].tuples == [(1, 2)]
        assert "R" in db
        assert "S" not in db

    def test_missing_relation_raises(self):
        db = Database()
        with pytest.raises(KeyError, match="no relation named 'X'"):
            db["X"]

    def test_init_from_iterable(self):
        db = Database([_rel("A", [(1,)]), _rel("B", [(2,)])])
        assert len(db) == 2
        assert {r.name for r in db} == {"A", "B"}

    def test_init_from_mapping_renames(self):
        base = _rel("orig", [(1, 2)])
        db = Database({"renamed": base})
        assert db["renamed"].tuples == [(1, 2)]
        assert db["renamed"].name == "renamed"

    def test_max_cardinality(self):
        db = Database([_rel("A", [(1,), (2,)]), _rel("B", [(3,)])])
        assert db.max_cardinality() == 2
        assert db.max_cardinality(["B"]) == 1
        assert Database().max_cardinality() == 0

    def test_total_tuples(self):
        db = Database([_rel("A", [(1,), (2,)]), _rel("B", [(3,)])])
        assert db.total_tuples() == 3


class TestHashIndex:
    def test_single_column(self):
        rel = _rel("R", [(1, 2), (1, 3), (2, 3)])
        index = HashIndex(rel, [0])
        assert index.lookup((1,)) == [0, 1]
        assert index.lookup((2,)) == [2]
        assert index.lookup((9,)) == []

    def test_composite_key(self):
        rel = _rel("R", [(1, 2, 5), (1, 3, 5), (1, 2, 6)])
        index = HashIndex(rel, [0, 1])
        assert index.lookup((1, 2)) == [0, 2]
        assert (1, 3) in index
        assert (2, 2) not in index

    def test_keys_and_len(self):
        rel = _rel("R", [(1, 2), (1, 3), (2, 3)])
        index = HashIndex(rel, [1])
        assert set(index.keys()) == {(2,), (3,)}
        assert len(index) == 2

    def test_max_bucket(self):
        rel = _rel("R", [(1, 2), (1, 3), (1, 4), (2, 3)])
        index = HashIndex(rel, [0])
        assert index.max_bucket() == 3
        empty = HashIndex(_rel("E", [(1,)]).filter(lambda t: False), [0])
        assert empty.max_bucket() == 0

    def test_getitem(self):
        rel = _rel("R", [(7, 8)])
        index = HashIndex(rel, [0])
        assert index[(7,)] == [0]
