"""Core correctness: every any-k algorithm against the brute-force oracle.

These are the most important tests in the suite: for many query shapes
and data distributions, every algorithm must return exactly the oracle's
(weight, output) multiset in non-decreasing weight order.
"""

import random

import pytest

from repro.data.database import Database
from repro.data.generators import (
    example6_database,
    path_of_matchings_database,
    recursive_worst_case,
    uniform_database,
)
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.query.builders import path_query, star_query
from repro.query.parser import parse_query
from tests.conftest import ALL_ALGORITHMS, brute_force, weight_signature


def check_all_algorithms(db, query, max_rel_product=200_000):
    expected = weight_signature(brute_force(db, query))
    for algorithm in ALL_ALGORITHMS:
        got = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm=algorithm)
        ]
        weights = [w for w, _ in got]
        assert weights == sorted(weights), f"{algorithm}: unordered output"
        assert weight_signature(got) == expected, (
            f"{algorithm}: wrong result multiset "
            f"({len(got)} vs {len(expected)})"
        )


class TestPathQueries:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_uniform_paths(self, length):
        db = uniform_database(length, 24, domain_size=4, seed=length)
        check_all_algorithms(db, path_query(length))

    def test_matching_path(self):
        db = path_of_matchings_database(4, 20, seed=1)
        check_all_algorithms(db, path_query(4))

    def test_sparse_path_with_dead_ends(self):
        rng = random.Random(5)
        db = Database()
        for i in (1, 2, 3):
            rel = Relation(f"R{i}", 2)
            for _ in range(25):
                rel.add((rng.randint(1, 10), rng.randint(1, 10)),
                        rng.uniform(0, 100))
            db.add(rel)
        check_all_algorithms(db, path_query(3))

    def test_single_atom_query_is_sorting(self):
        db = uniform_database(1, 30, domain_size=5, seed=2)
        check_all_algorithms(db, path_query(1))

    def test_duplicate_tuples_kept_as_witnesses(self):
        rel1 = Relation("R1", 2, [(1, 2), (1, 2)], [1.0, 5.0])
        rel2 = Relation("R2", 2, [(2, 3)], [2.0])
        db = Database([rel1, rel2])
        for algorithm in ALL_ALGORITHMS:
            got = [
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(db, path_query(2), algorithm=algorithm)
            ]
            assert got == [(3.0, (1, 2, 3)), (7.0, (1, 2, 3))], algorithm


class TestTreeQueries:
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_uniform_stars(self, size):
        db = uniform_database(size, 20, domain_size=4, seed=10 + size)
        check_all_algorithms(db, star_query(size))

    def test_deep_tree(self):
        # A "broom": path of 2 with a 2-star hanging off the middle.
        query = parse_query(
            "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(b, d), R4(d, e)"
        )
        db = uniform_database(4, 20, domain_size=3, seed=21)
        check_all_algorithms(db, query)

    def test_multi_attribute_joins(self):
        query = parse_query("Q(a, b, c, d) :- R1(a, b, c), R2(b, c, d)")
        rng = random.Random(31)
        db = Database()
        for name in ("R1", "R2"):
            rel = Relation(name, 3)
            for _ in range(30):
                rel.add(
                    (rng.randint(1, 3), rng.randint(1, 3), rng.randint(1, 3)),
                    rng.uniform(0, 10),
                )
            db.add(rel)
        check_all_algorithms(db, query)

    def test_self_join_path(self):
        rng = random.Random(41)
        edges = Relation("E", 2)
        for _ in range(30):
            edges.add((rng.randint(1, 6), rng.randint(1, 6)), rng.uniform(0, 10))
        db = Database([edges])
        check_all_algorithms(db, path_query(3, relation="E"))


class TestCartesianProducts:
    def test_example6(self):
        db = example6_database()
        query = parse_query("Q(a, b, c) :- R1(a), R2(b), R3(c)")
        check_all_algorithms(db, query)
        results = list(ranked_enumerate(db, query, algorithm="take2"))
        assert results[0].weight == 111.0
        assert results[0].output_tuple == (1, 10, 100)
        assert [r.weight for r in results[:4]] == [111.0, 112.0, 113.0, 121.0]

    def test_recursive_worst_case_instance(self):
        db = recursive_worst_case(6, 3)
        query = parse_query("Q(a, b, c) :- R1(a), R2(b), R3(c)")
        check_all_algorithms(db, query)

    def test_disconnected_two_components(self):
        query = parse_query("Q(a, b, c, d) :- R1(a, b), R2(c, d)")
        db = uniform_database(2, 15, domain_size=4, seed=51)
        check_all_algorithms(db, query)


class TestEmptyAndEdgeCases:
    def test_empty_output(self):
        db = Database(
            [
                Relation("R1", 2, [(1, 1)], [1.0]),
                Relation("R2", 2, [(2, 2)], [1.0]),
            ]
        )
        for algorithm in ALL_ALGORITHMS:
            assert (
                list(ranked_enumerate(db, path_query(2), algorithm=algorithm))
                == []
            ), algorithm

    def test_empty_relation(self):
        db = Database(
            [Relation("R1", 2, [(1, 1)], [1.0]), Relation("R2", 2)]
        )
        for algorithm in ALL_ALGORITHMS:
            assert (
                list(ranked_enumerate(db, path_query(2), algorithm=algorithm))
                == []
            ), algorithm

    def test_top_k_does_not_exhaust(self):
        db = uniform_database(3, 40, domain_size=4, seed=61)
        query = path_query(3)
        expected = brute_force(db, query)[:10]
        for algorithm in ALL_ALGORITHMS:
            enum = ranked_enumerate(db, query, algorithm=algorithm)
            got = [(next(enum).weight) for _ in range(10)]
            assert got == pytest.approx([w for w, _ in expected]), algorithm

    def test_unknown_algorithm_raises(self):
        db = uniform_database(2, 5, domain_size=2, seed=1)
        with pytest.raises(ValueError, match="unknown any-k algorithm"):
            list(ranked_enumerate(db, path_query(2), algorithm="nope"))

    def test_batch_nosort_same_multiset(self):
        db = uniform_database(2, 20, domain_size=3, seed=71)
        query = path_query(2)
        ranked = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="batch")
        )
        unsorted_batch = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="batch_nosort")
        )
        assert ranked == unsorted_batch


class TestWitnesses:
    def test_witness_weights_add_up(self):
        db = uniform_database(3, 25, domain_size=4, seed=81)
        query = path_query(3)
        for r in ranked_enumerate(db, query, algorithm="lazy"):
            total = sum(
                db[atom.relation_name].weights[tid]
                for atom, tid in zip(query.atoms, r.witness_ids)
            )
            assert total == pytest.approx(r.weight)

    def test_witness_tuples_join(self):
        db = uniform_database(3, 25, domain_size=4, seed=91)
        query = path_query(3)
        for r in ranked_enumerate(db, query, algorithm="take2"):
            t1, t2, t3 = r.witness
            assert t1[1] == t2[0] and t2[1] == t3[0]
