"""Differential conformance: every any-k variant, every storage backend.

For randomized (seeded) acyclic and cyclic queries, the ranked stream
produced over a :class:`SQLiteBackend` must be *identical* to the one
produced over in-memory storage — same plans, same T-DPs, same floats,
since SQLite REAL round-trips IEEE doubles exactly — and both must
agree with the Batch oracle (full join, then sort) up to aggregation
order.  Extends the cross-oracle pattern of ``test_cross_oracle.py``
one axis further: implementation x storage backend.
"""

import itertools
import random

import pytest

from repro.data.backend import MemoryBackend, SQLiteBackend
from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.relation import Relation
from repro.engine import Engine
from repro.query.builders import cycle_query, path_query, star_query

#: The any-k variants of Section 6 (batch is the oracle, not a subject).
ANYK_VARIANTS = ["recursive", "take2", "lazy", "eager", "all"]
#: Prefix length compared exactly across backends and variants.
K = 150


def random_case(seed: int):
    """A seeded random query + database pair (acyclic or cyclic)."""
    rng = random.Random(seed)
    shape = rng.choice(["path", "star", "cycle"])
    ell = rng.choice([3, 4])
    n = rng.randint(30, 70)
    domain = rng.randint(4, 9)
    if shape == "cycle" and rng.random() < 0.3:
        database = worst_case_cycle_database(ell, n, seed=seed)
    else:
        database = uniform_database(ell, n, domain_size=domain, seed=seed)
    query = {"path": path_query, "star": star_query, "cycle": cycle_query}[
        shape
    ](ell)
    return database, query, shape


def sqlite_copy(database: Database, tmp_path, tag: str) -> Database:
    backend = SQLiteBackend(str(tmp_path / f"{tag}.db"))
    for relation in database:
        backend.ingest(relation)
    return backend.database()


def memory_backend_copy(database: Database) -> Database:
    return MemoryBackend(list(database)).database()


def stream(database: Database, query, algorithm: str, k: int | None = K):
    """The ranked prefix as comparable ``(weight, output)`` pairs."""
    engine = Engine(database)
    prepared = engine.prepare(query, algorithm=algorithm)
    return [
        (result.weight, result.output_tuple)
        for result in itertools.islice(prepared.iter(), k)
    ]


class TestBackendsProduceIdenticalStreams:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_queries_all_variants(self, tmp_path, seed):
        database, query, shape = random_case(seed)
        via_sqlite = sqlite_copy(database, tmp_path, f"case{seed}")
        via_membackend = memory_backend_copy(database)
        oracle = sorted(
            (round(w, 6), out)
            for w, out in stream(database, query, "batch", k=None)
        )
        for algorithm in ANYK_VARIANTS:
            reference = stream(database, query, algorithm)
            # Bit-identical across storage backends: same tuples, same
            # order, same arithmetic.
            assert stream(via_sqlite, query, algorithm) == reference, (
                f"sqlite differs from memory for {algorithm} on "
                f"{shape} seed {seed}"
            )
            assert stream(via_membackend, query, algorithm) == reference
            # And the ranked prefix agrees with the Batch oracle.
            assert [
                (round(w, 6), out) for w, out in reference
            ] == oracle[: len(reference)], (
                f"{algorithm} on {shape} seed {seed} diverges from Batch"
            )

    @pytest.mark.parametrize("algorithm", ANYK_VARIANTS)
    def test_full_enumeration_on_cycle(self, tmp_path, algorithm):
        """Cyclic (union-of-decompositions) path, full output, both stores."""
        database = worst_case_cycle_database(4, 40, seed=12)
        query = cycle_query(4)
        reference = stream(database, query, algorithm, k=None)
        assert (
            stream(sqlite_copy(database, tmp_path, algorithm), query,
                   algorithm, k=None)
            == reference
        )
        weights = [w for w, _ in reference]
        assert weights == sorted(weights)

    def test_query_with_constant_selection(self, tmp_path):
        """Selections compiled from query text filter both backends alike."""
        database = uniform_database(3, 50, domain_size=5, seed=33)
        text = "Q(x, y, z) :- R1(x, y), R2(y, z), R3(z, 2)"
        via_sqlite = sqlite_copy(database, tmp_path, "sel")
        for algorithm in ("take2", "recursive"):
            mem = [
                (r.weight, r.output_tuple)
                for r in itertools.islice(
                    Engine(database).prepare(text, algorithm=algorithm).iter(), K
                )
            ]
            sql = [
                (r.weight, r.output_tuple)
                for r in itertools.islice(
                    Engine(via_sqlite).prepare(text, algorithm=algorithm).iter(), K
                )
            ]
            assert mem == sql
            assert mem, "selection case should not be empty"

    def test_witnesses_match_across_backends(self, tmp_path):
        """Witness recovery (rowid point lookups) returns the same tuples."""
        database = uniform_database(3, 40, domain_size=4, seed=5)
        query = cycle_query(3)
        via_sqlite = sqlite_copy(database, tmp_path, "wit")
        mem = list(
            itertools.islice(Engine(database).prepare(query).iter(), 25)
        )
        sql = list(
            itertools.islice(Engine(via_sqlite).prepare(query).iter(), 25)
        )
        assert [r.witness for r in mem] == [r.witness for r in sql]
        assert [r.witness_ids for r in mem] == [r.witness_ids for r in sql]


class TestDegreeStatisticsPushdown:
    def test_cycle_plan_uses_server_side_degrees(self, tmp_path):
        """Binding a cyclic query over SQLite asks the backend for degrees."""
        database = worst_case_cycle_database(4, 30, seed=3)
        via_sqlite = sqlite_copy(database, tmp_path, "deg")
        engine = Engine(via_sqlite)
        prepared = engine.prepare(cycle_query(4))
        prepared.bind()
        assert engine.indexes.pushdowns > 0

    def test_pushdown_matches_client_side_counts(self, tmp_path):
        database = uniform_database(1, 60, domain_size=5, seed=8)
        relation = database["R1"]
        backend = SQLiteBackend(str(tmp_path / "cnt.db"))
        backend.ingest(relation)
        lazy = backend.relation("R1")
        from repro.data.index import IndexCache

        cache = IndexCache()
        pushed = cache.degrees(lazy, (0,))
        assert cache.pushdowns == 1
        local = cache.degrees(relation, (0,))
        assert pushed == local
        # Repeats are memoised (no second GROUP BY)...
        assert cache.degrees(lazy, (0,)) == pushed
        assert cache.pushdowns == 1
        # ...until a mutation invalidates the stamp.
        lazy.add((99, 99), 0.0)
        refreshed = cache.degrees(lazy, (0,))
        assert cache.pushdowns == 2
        assert refreshed[(99,)] == 1
        backend.close()


def test_empty_relation_conformance(tmp_path):
    """A joined-away empty relation yields an empty stream on both stores."""
    database = Database([
        Relation("R", 2, [(1, 2)], [1.0]),
        Relation("S", 2),
    ])
    query_text = "Q(x, y, z) :- R(x, y), S(y, z)"
    assert list(Engine(database).prepare(query_text).iter()) == []
    via_sqlite = sqlite_copy(database, tmp_path, "empty")
    assert list(Engine(via_sqlite).prepare(query_text).iter()) == []
