"""Tests for the experiment harness (runner, workloads, SQL baseline)."""


from repro.data.generators import uniform_database
from repro.experiments.runner import (
    TTKResult,
    curve_table,
    measure_full_enumeration,
    measure_ttk,
    run_workload,
)
from repro.experiments.sql_baseline import load_sqlite, query_to_sql, time_sqlite
from repro.experiments.workloads import (
    WORKLOADS,
    Workload,
    bitcoin,
    synthetic_large,
    synthetic_small,
    twitter,
)
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from tests.conftest import brute_force


class TestRunner:
    def test_measure_ttk_counts(self):
        db = uniform_database(2, 30, domain_size=4, seed=1)
        result = measure_ttk(db, path_query(2), "take2", k=10)
        assert isinstance(result, TTKResult)
        assert result.produced == 10
        assert 0 < result.ttf <= result.ttk
        assert result.curve[0][0] == 1
        assert result.curve[-1][0] == 10

    def test_measure_full_enumeration(self):
        db = uniform_database(2, 20, domain_size=3, seed=2)
        result = measure_full_enumeration(db, path_query(2), "batch")
        expected = len(brute_force(db, path_query(2)))
        assert result.produced == expected

    def test_curve_is_monotone(self):
        db = uniform_database(3, 40, domain_size=5, seed=3)
        result = measure_ttk(db, path_query(3), "lazy", k=100, checkpoints=10)
        ks = [k for k, _t in result.curve]
        times = [t for _k, t in result.curve]
        assert ks == sorted(ks)
        assert times == sorted(times)

    def test_run_workload_and_table(self):
        db = uniform_database(2, 20, domain_size=3, seed=4)
        workload = Workload("test", db, path_query(2), 5)
        results = run_workload(workload, ["take2", "lazy"])
        table = curve_table(results, label="demo")
        assert "take2" in table and "lazy" in table
        assert "TTF" in table and "curve:" in table

    def test_empty_output_workload(self):
        from repro.data.database import Database
        from repro.data.relation import Relation

        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        result = measure_ttk(db, path_query(2), "take2", k=5)
        assert result.produced == 0


class TestWorkloads:
    def test_synthetic_small_shapes(self):
        for shape in ("path", "star"):
            workload = synthetic_small(shape, 3)
            assert workload.k is None
            assert workload.database.max_cardinality() >= 100
        cycle = synthetic_small("cycle", 4)
        assert cycle.query.name.startswith("QC")

    def test_synthetic_large_has_k(self):
        workload = synthetic_large("path", 3, k=100)
        assert workload.k == 100

    def test_graph_workloads_are_self_joins(self):
        for builder in (bitcoin, twitter):
            workload = builder("path", 3, k=10)
            assert workload.query.has_self_joins()
            assert set(workload.query.relation_names()) == {"E"}

    def test_registry_covers_figures(self):
        assert set(WORKLOADS) == {"fig10", "fig11", "fig12", "fig13"}
        assert len(WORKLOADS["fig10"]) == 12
        assert len(WORKLOADS["fig13"]) == 4

    def test_workload_repr(self):
        workload = synthetic_large("path", 3, k=7)
        assert "top-7" in repr(workload)


class TestSQLBaseline:
    def test_sql_text(self):
        sql = query_to_sql(path_query(2), limit=5)
        assert "ORDER BY weight ASC" in sql
        assert "LIMIT 5" in sql
        assert "t0.a2 = t1.a1" in sql

    def test_sqlite_agrees_with_oracle(self):
        db = uniform_database(2, 25, domain_size=3, seed=5)
        query = path_query(2)
        conn = load_sqlite(db, query.relation_names())
        rows = conn.execute(query_to_sql(query)).fetchall()
        expected = brute_force(db, query)
        assert len(rows) == len(expected)
        got_weights = [round(r[-1], 6) for r in rows]
        assert got_weights == [round(w, 6) for w, _ in expected]
        got_outputs = sorted(tuple(r[:-1]) for r in rows)
        assert got_outputs == sorted(o for _w, o in expected)

    def test_sqlite_cycle_query(self):
        db = uniform_database(3, 20, domain_size=3, seed=6)
        query = cycle_query(3)
        elapsed, count = time_sqlite(db, query)
        assert elapsed >= 0
        assert count == len(brute_force(db, query))

    def test_limit_respected(self):
        db = uniform_database(2, 25, domain_size=3, seed=7)
        _elapsed, count = time_sqlite(db, path_query(2), limit=3)
        assert count == 3

    def test_projection_head(self):
        db = uniform_database(2, 20, domain_size=3, seed=8)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        conn = load_sqlite(db, query.relation_names())
        rows = conn.execute(query_to_sql(query)).fetchall()
        assert all(len(r) == 2 for r in rows)  # x1 + weight
