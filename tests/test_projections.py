"""Projection semantics tests (Section 8.1, Theorem 20)."""

import math

import pytest

from repro.data.database import Database
from repro.data.generators import uniform_database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.enumeration.projections import build_free_connex_plan
from repro.query.parser import parse_query
from tests.conftest import brute_force, weight_signature


def rename(db, mapping):
    for old, new in mapping.items():
        db.relations[new] = db[old].rename(new)
    return db


def min_weight_oracle(db, query):
    """min over witnesses per head assignment, via the full brute force."""
    full = brute_force(db, query, head=query.head)
    best: dict = {}
    for weight, output in full:
        best[output] = min(weight, best.get(output, math.inf))
    return best


class TestAllWeight:
    def test_keeps_duplicates(self):
        db = uniform_database(2, 25, domain_size=3, seed=1)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        got = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, projection="all_weight")
        ]
        expected = weight_signature(brute_force(db, query, head=("x1",)))
        assert weight_signature(got) == expected
        assert [w for w, _ in got] == sorted(w for w, _ in got)

    def test_assignment_projected(self):
        db = uniform_database(2, 10, domain_size=2, seed=2)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        result = next(iter(ranked_enumerate(db, query, projection="all_weight")))
        assert set(result.assignment) == {"x1"}

    def test_witness_preserved(self):
        db = uniform_database(2, 10, domain_size=2, seed=3)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        result = next(iter(ranked_enumerate(db, query, projection="all_weight")))
        assert result.witness is not None and len(result.witness) == 2


class TestMinWeight:
    @pytest.mark.parametrize("text", [
        "Q(x1) :- R1(x1, x2)",
        "Q(x1, x2) :- R1(x1, x2), R2(x2, x3)",
        "Q(x2) :- R1(x1, x2), R2(x2, x3)",
    ])
    def test_matches_oracle(self, text):
        db = uniform_database(2, 25, domain_size=3, seed=4)
        query = parse_query(text)
        oracle = min_weight_oracle(db, query)
        got = {
            r.output_tuple: r.weight
            for r in ranked_enumerate(db, query, projection="min_weight")
        }
        assert set(got) == set(oracle)
        for output, weight in got.items():
            assert weight == pytest.approx(oracle[output])

    def test_ranked_and_distinct(self):
        db = uniform_database(2, 30, domain_size=3, seed=5)
        query = parse_query("Q(x1, x2) :- R1(x1, x2), R2(x2, x3)")
        results = list(ranked_enumerate(db, query, projection="min_weight"))
        weights = [r.weight for r in results]
        outputs = [r.output_tuple for r in results]
        assert weights == sorted(weights)
        assert len(set(outputs)) == len(outputs), "each assignment once"

    def test_example19_shape(self):
        db = rename(
            uniform_database(4, 25, domain_size=4, seed=6),
            {"R1": "Ra", "R2": "Rb", "R3": "Rc", "R4": "Rd"},
        )
        query = parse_query(
            "Q(y1, y2, y3) :- Ra(y1, y2), Rb(y2, y3), Rc(x1, y1), Rd(x2, y3)"
        )
        assert query.is_free_connex()
        oracle = min_weight_oracle(db, query)
        got = {
            r.output_tuple: r.weight
            for r in ranked_enumerate(db, query, projection="min_weight")
        }
        assert {k: round(v, 6) for k, v in got.items()} == {
            k: round(v, 6) for k, v in oracle.items()
        }

    def test_fully_existential_component(self):
        # Q(y) :- R(y, y2), S(x1, x2): the S component contributes a
        # constant offset = min weight of S (its variables are all
        # existential and disconnected from the head).
        r = Relation("R", 2, [(1, 5), (2, 6)], [3.0, 1.0])
        s = Relation("S", 2, [(7, 7), (8, 8)], [10.0, 20.0])
        db = Database([r, s])
        query = parse_query("Q(y) :- R(y, y2), S(x1, x2)")
        got = {
            r_.output_tuple: r_.weight
            for r_ in ranked_enumerate(db, query, projection="min_weight")
        }
        assert got == {(2,): 11.0, (1,): 13.0}

    def test_non_free_connex_rejected(self):
        db = uniform_database(2, 10, domain_size=2, seed=7)
        query = parse_query("Q(x1, x3) :- R1(x1, x2), R2(x2, x3)")
        with pytest.raises(ValueError, match="not free-connex"):
            list(ranked_enumerate(db, query, projection="min_weight"))

    def test_cyclic_rejected(self):
        db = uniform_database(3, 10, domain_size=2, seed=8)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3), R3(x3, x1)")
        with pytest.raises(ValueError, match="cyclic"):
            list(ranked_enumerate(db, query, projection="min_weight"))

    def test_unknown_semantics_rejected(self):
        db = uniform_database(2, 5, domain_size=2, seed=9)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        with pytest.raises(ValueError, match="unknown projection"):
            ranked_enumerate(db, query, projection="best_effort")

    def test_empty_output(self):
        r = Relation("R", 2, [(1, 1)], [0.0])
        s = Relation("S", 2, [(2, 2)], [0.0])
        db = Database([r, s])
        query = parse_query("Q(y) :- R(y, z), S(z, x)")
        assert list(ranked_enumerate(db, query, projection="min_weight")) == []


class TestFreeConnexPlan:
    def test_plan_structure(self):
        db = uniform_database(2, 20, domain_size=3, seed=10)
        query = parse_query("Q(x1, x2) :- R1(x1, x2), R2(x2, x3)")
        plan = build_free_connex_plan(db, query)
        assert plan.query.is_full()
        assert set(plan.query.variables) == {"x1", "x2"}
        # R1 stays (fully free); R2 is replaced by its projection.
        names = sorted(r.name for r in plan.database)
        assert any("R1" in n for n in names)
        assert any("__free" in n or "R2" in n for n in names)

    def test_projected_relations_distinct(self):
        db = uniform_database(2, 30, domain_size=2, seed=11)
        query = parse_query("Q(x1, x2) :- R1(x1, x2), R2(x2, x3)")
        plan = build_free_connex_plan(db, query)
        for relation in plan.database:
            assert len(set(relation.tuples)) == len(relation)
