"""UnionEnumerator (UT-DP) and Batch baseline behaviour."""

import pytest

from repro.anyk.base import make_enumerator
from repro.anyk.batch import Batch, enumerate_all_solutions
from repro.anyk.union import UnionEnumerator
from repro.data.generators import uniform_database
from repro.dp.builder import build_tdp_for_query
from repro.query.builders import path_query
from repro.util.counters import OpCounter
from tests.conftest import brute_force, weight_signature


def make_member(seed, algorithm="take2"):
    db = uniform_database(2, 15, domain_size=3, seed=seed)
    tdp = build_tdp_for_query(db, path_query(2))
    return db, make_enumerator(tdp, algorithm)


class TestUnion:
    def test_merges_in_order(self):
        db1, member1 = make_member(1)
        db2, member2 = make_member(2)
        union = UnionEnumerator([member1, member2], dedup=False)
        weights = [r.weight for r in union]
        assert weights == sorted(weights)
        expected = sorted(
            [w for w, _ in brute_force(db1, path_query(2))]
            + [w for w, _ in brute_force(db2, path_query(2))]
        )
        assert weights == pytest.approx(expected)

    def test_single_member_passthrough(self):
        db, member = make_member(3)
        union = UnionEnumerator([member], dedup=False)
        got = [r.weight for r in union]
        assert got == pytest.approx(
            [w for w, _ in brute_force(db, path_query(2))]
        )

    def test_dedup_consecutive(self):
        # Two identical members produce every result twice, consecutively
        # (same keys): dedup must halve the stream.
        db = uniform_database(2, 15, domain_size=3, seed=4)
        tdp = build_tdp_for_query(db, path_query(2))
        member1 = make_enumerator(tdp, "take2")
        member2 = make_enumerator(tdp, "take2")
        identity = lambda r: (r.key, r.output_tuple())  # noqa: E731
        union = UnionEnumerator([member1, member2], identity=identity, dedup=True)
        got = [r.weight for r in union]
        expected = [w for w, _ in brute_force(db, path_query(2))]
        # Ties between distinct outputs may interleave, but with the
        # key+output identity only true duplicates are dropped.
        assert sorted(got) == pytest.approx(sorted(expected))

    def test_empty_members(self):
        union = UnionEnumerator([], dedup=False)
        assert list(union) == []

    def test_counts_pq_traffic(self):
        _db, member = make_member(5)
        counter = OpCounter()
        union = UnionEnumerator([member], dedup=False, counter=counter)
        n = len(list(union))
        assert counter.pq_pop == n
        assert counter.results == n


class TestBatch:
    def test_sorted_flag(self):
        db = uniform_database(2, 20, domain_size=3, seed=6)
        tdp = build_tdp_for_query(db, path_query(2))
        ranked = [r.weight for r in Batch(tdp)]
        unsorted_batch = [r.weight for r in Batch(tdp, sort=False)]
        assert ranked == sorted(ranked)
        assert sorted(unsorted_batch) == pytest.approx(ranked)

    def test_size_attribute(self):
        db = uniform_database(2, 20, domain_size=3, seed=7)
        tdp = build_tdp_for_query(db, path_query(2))
        batch = Batch(tdp)
        assert batch.size == len(brute_force(db, path_query(2)))

    def test_enumerate_all_solutions_weights(self):
        db = uniform_database(3, 15, domain_size=3, seed=8)
        tdp = build_tdp_for_query(db, path_query(3))
        solutions = list(enumerate_all_solutions(tdp))
        expected = weight_signature(brute_force(db, path_query(3)))
        got = sorted(round(w, 6) for w, _ in solutions)
        assert got == [w for w, _ in expected]

    def test_empty_tdp(self):
        from repro.data.database import Database
        from repro.data.relation import Relation

        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        tdp = build_tdp_for_query(db, path_query(2))
        assert list(enumerate_all_solutions(tdp)) == []
        assert list(Batch(tdp)) == []

    def test_deterministic_tie_order(self):
        from repro.data.database import Database
        from repro.data.relation import Relation

        r1 = Relation("R1", 2, [(1, 1), (2, 1)], [1.0, 1.0])
        r2 = Relation("R2", 2, [(1, 5), (1, 6)], [1.0, 1.0])
        db = Database([r1, r2])
        tdp = build_tdp_for_query(db, path_query(2))
        first = [r.states for r in Batch(tdp)]
        second = [r.states for r in Batch(build_tdp_for_query(db, path_query(2)))]
        assert first == second, "tie order must be deterministic"
