"""Property-based tests (hypothesis): algorithm agreement on random inputs.

The key invariant of the whole library: for ANY database and ANY of the
supported query shapes, every any-k algorithm must produce exactly the
same ranked sequence of weights and the same result multiset as the
brute-force oracle.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.query.builders import cycle_query, path_query, star_query
from tests.conftest import ANYK_ALGORITHMS, brute_force, weight_signature

# Weights are multiples of 1/8 so float arithmetic is exact and
# cross-algorithm comparisons need no tolerance.
weight_strategy = st.integers(min_value=0, max_value=80).map(lambda w: w / 8.0)


def relations_strategy(count, max_tuples=10, domain=3):
    tuple_strategy = st.tuples(
        st.integers(min_value=1, max_value=domain),
        st.integers(min_value=1, max_value=domain),
    )
    row = st.tuples(tuple_strategy, weight_strategy)
    return st.lists(
        st.lists(row, min_size=1, max_size=max_tuples),
        min_size=count,
        max_size=count,
    )


def build_db(rows_per_relation):
    db = Database()
    for index, rows in enumerate(rows_per_relation, start=1):
        rel = Relation(f"R{index}", 2)
        for values, weight in rows:
            rel.add(values, weight)
        db.add(rel)
    return db


def check_agreement(db, query, algorithms=ANYK_ALGORITHMS):
    expected = weight_signature(brute_force(db, query))
    reference_weights = None
    for algorithm in algorithms:
        got = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm=algorithm)
        ]
        weights = [w for w, _ in got]
        assert weights == sorted(weights), f"{algorithm} out of order"
        assert weight_signature(got) == expected, f"{algorithm} wrong multiset"
        if reference_weights is None:
            reference_weights = weights
        else:
            assert weights == reference_weights, (
                f"{algorithm} disagrees on the weight sequence"
            )


@settings(max_examples=40, deadline=None)
@given(relations_strategy(3))
def test_path3_agreement(rows):
    check_agreement(build_db(rows), path_query(3))


@settings(max_examples=30, deadline=None)
@given(relations_strategy(3))
def test_star3_agreement(rows):
    check_agreement(build_db(rows), star_query(3))


@settings(max_examples=25, deadline=None)
@given(relations_strategy(4, max_tuples=8))
def test_cycle4_agreement(rows):
    check_agreement(
        build_db(rows), cycle_query(4), algorithms=["take2", "recursive"]
    )


@settings(max_examples=30, deadline=None)
@given(relations_strategy(2))
def test_batch_agrees_with_take2(rows):
    db = build_db(rows)
    query = path_query(2)
    batch = [
        (r.weight, r.output_tuple)
        for r in ranked_enumerate(db, query, algorithm="batch")
    ]
    take2 = [
        (r.weight, r.output_tuple)
        for r in ranked_enumerate(db, query, algorithm="take2")
    ]
    assert weight_signature(batch) == weight_signature(take2)
    assert [w for w, _ in batch] == [w for w, _ in take2]


@settings(max_examples=30, deadline=None)
@given(relations_strategy(2), st.integers(min_value=1, max_value=5))
def test_topk_prefix_property(rows, k):
    """The first k results of any-k equal the first k of the full sort."""
    db = build_db(rows)
    query = path_query(2)
    expected = [w for w, _ in brute_force(db, query)][:k]
    enum = ranked_enumerate(db, query, algorithm="take2")
    got = [r.weight for _, r in zip(range(k), enum)]
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(relations_strategy(2))
def test_min_weight_projection_property(rows):
    from repro.query.parser import parse_query

    db = build_db(rows)
    query = parse_query("Q(x1, x2) :- R1(x1, x2), R2(x2, x3)")
    full = brute_force(db, query, head=("x1", "x2"))
    best: dict = {}
    for weight, output in full:
        best[output] = min(weight, best.get(output, math.inf))
    got = {
        r.output_tuple: r.weight
        for r in ranked_enumerate(db, query, projection="min_weight")
    }
    assert got == best


@settings(max_examples=25, deadline=None)
@given(relations_strategy(3, max_tuples=6))
def test_self_join_agreement(rows):
    # Use only the first relation, joined with itself three times.
    db = build_db(rows[:1])
    query = path_query(3, relation="R1")
    check_agreement(db, query, algorithms=["take2", "lazy", "recursive"])
