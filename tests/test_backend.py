"""Storage-backend layer: protocol conformance, SQLite persistence,
version-counter soundness, and the sql_baseline identifier hardening."""

import sqlite3

import pytest

from repro.data.backend import (
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    quote_identifier,
    validate_identifier,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import Engine

ROWS = [((1, 2), 0.5), ((1, 3), 1.5), ((2, 3), 0.25)]


def filled(backend, name="R"):
    backend.create(name, 2)
    backend.extend(name, ROWS)
    return backend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        backend = SQLiteBackend(str(tmp_path / "t.db"))
        yield backend
        backend.close()


class TestProtocol:
    def test_both_backends_satisfy_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_create_and_read_back(self, backend):
        filled(backend)
        assert backend.relation_names() == ["R"]
        assert backend.arity("R") == 2
        assert backend.cardinality("R") == 3
        assert list(backend.iter_rows("R")) == ROWS

    def test_iteration_preserves_insertion_order(self, backend):
        filled(backend)
        backend.append("R", (9, 9), 0.0)
        assert [v for v, _w in backend.iter_rows("R")] == [
            (1, 2), (1, 3), (2, 3), (9, 9),
        ]

    def test_sorted_rows(self, backend):
        filled(backend)
        weights = [w for _v, w in backend.sorted_rows("R")]
        assert weights == sorted(weights)
        weights_desc = [w for _v, w in backend.sorted_rows("R", descending=True)]
        assert weights_desc == sorted(weights, reverse=True)

    def test_fetch_tuple_by_position(self, backend):
        filled(backend)
        assert backend.fetch_tuple("R", 1) == ((1, 3), 1.5)
        with pytest.raises((IndexError, KeyError)):
            backend.fetch_tuple("R", 17)

    def test_degree_statistics(self, backend):
        filled(backend)
        assert backend.degree_statistics("R", (0,)) == {(1,): 2, (2,): 1}
        assert backend.degree_statistics("R", (0, 1)) == {
            (1, 2): 1, (1, 3): 1, (2, 3): 1,
        }

    def test_version_bumps_on_mutation(self, backend):
        filled(backend)
        v0 = backend.version("R")
        backend.append("R", (5, 5), 2.0)
        assert backend.version("R") > v0

    def test_missing_relation_raises(self, backend):
        with pytest.raises(KeyError, match="Nope"):
            backend.arity("Nope")

    def test_duplicate_create_rejected_unless_replace(self, backend):
        filled(backend)
        with pytest.raises(ValueError, match="already exists"):
            backend.create("R", 2)
        backend.create("R", 3, replace=True)
        assert backend.cardinality("R") == 0
        assert backend.arity("R") == 3

    def test_drop(self, backend):
        filled(backend)
        backend.drop("R")
        assert "R" not in backend.relation_names()
        with pytest.raises(KeyError):
            backend.drop("R")

    def test_arity_mismatch_rejected(self, backend):
        filled(backend)
        with pytest.raises(ValueError, match="arity"):
            backend.append("R", (1, 2, 3), 0.0)
        with pytest.raises(ValueError, match="arity"):
            backend.extend("R", [((1,), 0.0)])

    def test_ingest_copies_a_relation(self, backend):
        relation = Relation("S", 2, [t for t, _ in ROWS], [w for _, w in ROWS])
        backend.ingest(relation)
        assert list(backend.iter_rows("S")) == ROWS

    def test_database_view(self, backend):
        filled(backend)
        db = backend.database()
        assert db.backend is backend
        assert set(db.relations) == {"R"}
        assert len(db["R"]) == 3
        assert list(db["R"].rows()) == ROWS

    def test_replace_is_observed_by_database_views(self, backend):
        """Re-ingesting a relation must reach existing views and bump
        the (len + version) invalidation stamp on both backends."""
        filled(backend)
        db = backend.database()
        view = db["R"]
        assert len(view) == 3
        v0 = db.version
        backend.ingest(Relation("R", 2, [(8, 8)], [8.0]))
        assert view.tuples == [(8, 8)]
        assert db.version > v0

    def test_failed_extend_leaves_no_partial_batch(self, backend):
        filled(backend)
        v0 = backend.version("R")

        def poisoned():
            yield (7, 7), 0.1
            yield (8, 8), 0.2
            raise RuntimeError("source died mid-stream")

        with pytest.raises(RuntimeError):
            backend.extend("R", poisoned())
        # Later unrelated writes must not resurrect the partial rows.
        backend.append("R", (9, 9), 0.3)
        rows = [v for v, _w in backend.iter_rows("R")]
        assert (7, 7) not in rows and (8, 8) not in rows
        assert rows[-1] == (9, 9)
        assert backend.version("R") == v0 + 1

    def test_hostile_names_rejected(self, backend):
        for bad in ('R"; DROP TABLE R; --', "a b", "1R", "", "sqlite_x",
                    "repro_relations"):
            with pytest.raises(ValueError):
                backend.create(bad, 2)


class TestSQLitePersistence:
    def test_reopen_sees_data_and_versions(self, tmp_path):
        path = str(tmp_path / "p.db")
        with SQLiteBackend(path) as backend:
            filled(backend)
            backend.append("R", (7, 7), 9.0)
            version = backend.version("R")
        with SQLiteBackend(path) as reopened:
            assert reopened.relation_names() == ["R"]
            assert reopened.version("R") == version
            assert list(reopened.iter_rows("R"))[-1] == ((7, 7), 9.0)

    def test_value_types_round_trip(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "v.db"))
        backend.create("T", 3)
        backend.append("T", (1, 2.5, "hello"), 0.75)
        ((values, weight),) = list(backend.iter_rows("T"))
        assert values == (1, 2.5, "hello")
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)
        assert weight == 0.75
        backend.close()

    def test_closed_backend_raises(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "c.db")))
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            list(backend.iter_rows("R"))

    def test_replace_keeps_len_plus_version_monotone(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "m.db")))
        stamp = backend.cardinality("R") + backend.version("R")
        backend.create("R", 2, replace=True)  # now empty
        assert backend.cardinality("R") + backend.version("R") > stamp
        backend.close()

    def test_create_index_access_path(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "i.db")))
        name = backend.create_index("R", (0,))
        backend.create_index("R", (0,))  # idempotent
        indexes = {
            row[0]
            for row in backend.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        assert name in indexes
        with pytest.raises(ValueError, match="column"):
            backend.create_index("R", (5,))
        backend.close()

    def test_lazy_relation_is_not_materialized_up_front(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "l.db")))
        relation = backend.relation("R")
        assert not relation.is_materialized
        assert len(relation) == 3           # COUNT(*), still lazy
        assert not relation.is_materialized
        assert list(relation.rows()) == ROWS  # streamed, still lazy
        assert not relation.is_materialized
        assert relation.tuple_at(2) == (2, 3)  # point lookup, still lazy
        assert not relation.is_materialized
        assert relation.tuples == [t for t, _ in ROWS]  # now materialised
        assert relation.is_materialized
        backend.close()

    def test_sorted_by_weight_pushes_down(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "s.db")))
        relation = backend.relation("R")
        ordered = relation.sorted_by_weight()
        assert ordered.weights == [0.25, 0.5, 1.5]
        assert not relation.is_materialized  # ORDER BY ran server-side
        backend.close()


class TestVersionSoundness:
    """Mutating backend-loaded relations must invalidate engine caches."""

    def query_db(self, backend):
        backend.create("R", 2)
        backend.extend("R", [((1, 2), 1.0), ((2, 2), 5.0)])
        backend.create("S", 2)
        backend.extend("S", [((2, 9), 2.0)])
        return backend.database()

    def test_mutation_bumps_database_version(self, backend):
        db = self.query_db(backend)
        v0 = db.version
        db["R"].add((3, 2), 0.5)
        assert db.version > v0

    def test_mutation_invalidates_prepared_query(self, backend):
        db = self.query_db(backend)
        engine = Engine(db)
        prepared = engine.prepare("Q(x, y, z) :- R(x, y), S(y, z)")
        first = prepared.top(10)
        assert len(first) == 2
        assert engine.stats.binds == 1
        db["R"].add((3, 2), 0.1)
        again = prepared.top(10)
        assert len(again) == 3
        assert engine.stats.binds == 2
        assert again[0].weight == pytest.approx(2.1)

    def test_aliased_rename_copy_mutation_is_observed(self, backend):
        db = self.query_db(backend)
        engine = Engine(db)
        prepared = engine.prepare("Q(x, y, z) :- R(x, y), S(y, z)")
        assert len(prepared.top(10)) == 2
        alias = db["R"].rename("R_alias")
        alias.add((3, 2), 0.1)  # writes through to the shared storage
        assert len(prepared.top(10)) == 3
        assert engine.stats.binds == 2

    def test_two_views_of_one_table_stay_coherent(self, tmp_path):
        backend = filled(SQLiteBackend(str(tmp_path / "w.db")))
        view_a = backend.relation("R")
        view_b = backend.relation("R")
        assert view_a.tuples == view_b.tuples  # both materialised
        view_b.add((4, 4), 4.0)
        assert view_a.version == view_b.version
        assert view_a.tuples[-1] == (4, 4)  # refreshed, not stale
        backend.close()

    def test_len_rows_and_tuple_at_see_cross_view_mutations(self, tmp_path):
        """A materialised view must not serve stale len/rows/tuple_at
        after the table was mutated through another view."""
        backend = filled(SQLiteBackend(str(tmp_path / "st.db")))
        view = backend.relation("R")
        assert view.tuples  # materialise
        backend.relation("R").add((6, 6), 6.0)
        assert len(view) == 4
        assert view.tuple_at(3) == (6, 6)
        assert list(view.rows())[-1] == ((6, 6), 6.0)
        backend.close()

    def test_no_spurious_rebinds_without_mutation(self, backend):
        db = self.query_db(backend)
        engine = Engine(db)
        prepared = engine.prepare("Q(x, y, z) :- R(x, y), S(y, z)")
        for _ in range(3):
            prepared.top(5)
        assert engine.stats.binds == 1


class TestIdentifierHelpers:
    def test_validate_accepts_sane_names(self):
        for name in ("R", "edges_2", "_tmp", "A1B2"):
            assert validate_identifier(name) == name

    def test_validate_rejects_injection_attempts(self):
        for bad in ('R"; DROP TABLE R; --', "R S", "1abc", "", "répro",
                    "sqlite_master", "repro_relations", None, 42):
            with pytest.raises(ValueError):
                validate_identifier(bad)

    def test_quote_wraps_in_double_quotes(self):
        assert quote_identifier("R") == '"R"'


class TestSqlBaselineHardening:
    def base_db(self):
        return Database([
            Relation("R", 2, [(1, 2), (2, 3)], [0.5, 0.25]),
            Relation("S", 2, [(2, 4)], [1.0]),
        ])

    def test_load_sqlite_creates_indexes(self):
        from repro.experiments.sql_baseline import load_sqlite

        conn = load_sqlite(self.base_db(), ["R", "S"])
        indexes = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        assert {"idx_R_a1", "idx_S_a1"} <= indexes
        # And the index is actually usable as an access path.
        plan = conn.execute(
            "EXPLAIN QUERY PLAN SELECT * FROM R WHERE a1 = 1"
        ).fetchall()
        assert any("idx_R_a1" in str(row) for row in plan)
        conn.close()

    def test_load_sqlite_rejects_hostile_relation_name(self):
        from repro.experiments.sql_baseline import load_sqlite

        bad = 'R(a1, w); DROP TABLE R; --'
        db = Database([Relation(bad, 1, [(1,)], [0.0])])
        with pytest.raises(ValueError, match="unsafe relation name"):
            load_sqlite(db, [bad])

    def test_query_to_sql_still_executes(self):
        from repro.experiments.sql_baseline import time_sqlite
        from repro.query.parser import parse_query

        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        _elapsed, count = time_sqlite(self.base_db(), query)
        assert count == 1


def test_sqlite_backend_is_plain_sqlite(tmp_path):
    """The .db file is readable by any sqlite3 client (no private format)."""
    path = str(tmp_path / "open.db")
    with SQLiteBackend(path) as backend:
        filled(backend)
    conn = sqlite3.connect(path)
    assert conn.execute("SELECT COUNT(*) FROM R").fetchone() == (3,)
    assert conn.execute(
        "SELECT arity FROM repro_relations WHERE name = 'R'"
    ).fetchone() == (2,)
    conn.close()
