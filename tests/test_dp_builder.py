"""T-DP construction tests: connector encoding, bottom-up phase, pruning."""

import math

import pytest

from repro.data.database import Database
from repro.data.generators import example6_database, uniform_database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp, build_tdp_for_query
from repro.query.builders import path_query, star_query
from repro.query.parser import parse_query


class TestExample6:
    """The paper's running example (Fig 1 / Fig 2)."""

    def setup_method(self):
        self.db = example6_database()
        self.query = parse_query("Q(x1, x2, x3) :- R1(x1), R2(x2), R3(x3)")
        self.tdp = build_tdp_for_query(self.db, self.query)

    def test_best_weight_is_111(self):
        assert self.tdp.best_weight == 111.0

    def test_one_connector_per_cartesian_stage(self):
        # Cartesian stages share a single connector each (join key = ()).
        assert len(self.tdp.root_conn) == 3
        assert all(len(conn) == 3 for conn in self.tdp.root_conn.values())

    def test_pi1_values(self):
        # pi1 excludes the state's own weight; for the Cartesian product
        # every stage is a root with no children, so pi1 is 0 everywhere.
        for stage in range(3):
            assert all(p == 0.0 for p in self.tdp.pi1[stage])

    def test_connector_min_entries(self):
        mins = sorted(conn.min_value for conn in self.tdp.root_conn.values())
        assert mins == [1.0, 10.0, 100.0]


class TestPathConstruction:
    def test_fig2_choice_sets_on_serial_chain(self):
        """Fig 2's choice sets, reproduced on a serial chain encoding.

        Fig 1 draws the Cartesian product as a serial multi-stage graph;
        we realise the same chain with explicit chaining variables so
        that stage R2 hangs below R1 and R3 below R2.  The choice set
        entries at any R2 connector must then be {110, 210, 310}
        (= w(s') + pi1(s') for s' in stage R3... shifted one stage up),
        exactly as in the figure.
        """
        db = Database(
            [
                Relation("R1", 2, [(0, 1), (0, 2), (0, 3)], [1.0, 2.0, 3.0]),
                Relation("R2", 2, [(0, 10), (0, 20), (0, 30)],
                         [10.0, 20.0, 30.0]),
                Relation("R3", 2, [(0, 100), (0, 200), (0, 300)],
                         [100.0, 200.0, 300.0]),
            ]
        )
        query = parse_query("Q(a, b, c) :- R1(j, a), R2(j, b), R3(j, c)")
        # GYO yields a tree; re-root so R1 is on top, then R2/R3 hang off
        # the shared join variable j, which makes the solution space the
        # same as Fig 1's chain.
        from repro.query.jointree import build_join_tree

        tree = build_join_tree(query, root=0)
        tdp = build_tdp(db, tree)
        assert tdp.best_weight == 111.0
        # The connector towards stage R3 holds choices {110, 210, 310}
        # before adding R2's own weight, matching Fig 2's inner column.
        stage_r3 = [s for s in range(3) if tdp.atom_of_stage[s] == 2][0]
        parent = tdp.parent_stage[stage_r3]
        conn = tdp.child_conns[parent][0][tdp.branch_index[stage_r3]]
        assert sorted(e[2] for e in conn.entries) == [100.0, 200.0, 300.0]
        # And the full weights of paths from an R1 state:
        # w("2") + min(R2 choices) + min(R3 choices) = 2 + 10 + 100 = 112.
        stage_r1 = [s for s in range(3) if tdp.atom_of_stage[s] == 0][0]
        state_2 = tdp.tuples[stage_r1].index((0, 2))
        total = tdp.values[stage_r1][state_2] + tdp.pi1[stage_r1][state_2]
        assert total == 112.0

    def test_equi_join_connector_sharing(self):
        """Fig 3: parents with equal join values share one ChoiceSet."""
        r1 = Relation("R1", 2, [("a", 1), ("b", 1), ("c", 1), ("d", 2)],
                      [1.0, 2.0, 3.0, 4.0])
        r2 = Relation("R2", 2, [(1, "e"), (1, "f"), (2, "g"), (2, "h")],
                      [10.0, 20.0, 30.0, 40.0])
        db = Database([r1, r2])
        query = parse_query("Q(x, y, z) :- R1(x, y), R2(y, z)")
        tdp = build_tdp_for_query(db, query)
        # Stage of R1 is the root (parent of R2's stage).
        root = tdp.root_stages[0]
        child = [s for s in range(2) if s != root][0]
        assert tdp.parent_stage[child] == root
        conns = [tdp.child_conns[root][state][0] for state in range(4)]
        # States a,b,c (join value 1) share the same connector object.
        by_value = {}
        for state, values in enumerate(tdp.tuples[root]):
            by_value.setdefault(values[1], set()).add(id(conns[state]))
        assert all(len(ids) == 1 for ids in by_value.values())
        assert len({id(c) for c in conns}) == 2

    def test_total_edges_linear(self):
        """The transformed graph has O(l*n) choice entries, not O(l*n^2)."""
        db = uniform_database(3, 50, domain_size=5, seed=1)
        tdp = build_tdp_for_query(db, path_query(3))
        total_entries = sum(
            len(conn)
            for stage in range(3)
            for state_conns in tdp.child_conns[stage]
            for conn in state_conns
        )
        # With sharing, each alive state appears in exactly one connector
        # per parent branch; count distinct connectors instead.
        distinct = {}
        for stage in range(3):
            for state_conns in tdp.child_conns[stage]:
                for conn in state_conns:
                    distinct[conn.uid] = len(conn)
        for conn in tdp.root_conn.values():
            distinct[conn.uid] = len(conn)
        assert sum(distinct.values()) <= 3 * 50

    def test_dead_state_pruning(self):
        """States with no join partner in a child branch are pruned."""
        r1 = Relation("R1", 2, [(1, 1), (2, 99)], [1.0, 1.0])
        r2 = Relation("R2", 2, [(1, 5)], [1.0])
        db = Database([r1, r2])
        tdp = build_tdp_for_query(db, path_query(2))
        stage_r1 = [s for s in range(2) if tdp.atom_of_stage[s] == 0][0]
        if tdp.parent_stage[stage_r1] == -1:
            # R1 at the root: its states are checked against the child
            # branch connectors, so the dangling tuple dies immediately.
            assert tdp.tuples[stage_r1] == [(1, 1)]
        else:
            # R1 below R2: (2,99) stays in the stage arrays (its join
            # group simply is never referenced), but it must be
            # unreachable — absent from the connector R2's state uses.
            parent = tdp.parent_stage[stage_r1]
            reachable = {
                tdp.tuples[stage_r1][entry[1]]
                for state_conns in tdp.child_conns[parent]
                for conn in state_conns
                for entry in conn.entries
            }
            assert reachable == {(1, 1)}

    def test_empty_output_detection(self):
        r1 = Relation("R1", 2, [(1, 1)], [1.0])
        r2 = Relation("R2", 2, [(2, 5)], [1.0])
        db = Database([r1, r2])
        tdp = build_tdp_for_query(db, path_query(2))
        assert tdp.is_empty()
        assert tdp.best_weight == math.inf

    def test_pi1_matches_brute_force_suffix_minimum(self):
        db = uniform_database(3, 30, domain_size=4, seed=7)
        query = path_query(3)
        tdp = build_tdp_for_query(db, query)
        # For the root stage: value + pi1 must equal the cheapest full
        # solution through that state.
        from tests.conftest import brute_force

        results = brute_force(db, query)
        best_by_first_tuple = {}
        for weight, output in results:
            first = (output[0], output[1])
            best_by_first_tuple.setdefault(first, weight)
            best_by_first_tuple[first] = min(best_by_first_tuple[first], weight)
        root = tdp.root_stages[0]
        # Root stage = first atom in the join-tree serialization; find
        # which atom it is and check only if it's atom 0 (R1).  Duplicate
        # R1 tuples share output values, so compare per-value minima.
        if tdp.atom_of_stage[root] == 0:
            best_by_state_values: dict = {}
            for state, values in enumerate(tdp.tuples[root]):
                total = tdp.values[root][state] + tdp.pi1[root][state]
                previous = best_by_state_values.get(values, math.inf)
                best_by_state_values[values] = min(previous, total)
            for values, got in best_by_state_values.items():
                assert got == pytest.approx(best_by_first_tuple[values])


class TestTreeConstruction:
    def test_star_children_layout(self):
        db = uniform_database(4, 30, domain_size=4, seed=3)
        tdp = build_tdp_for_query(db, star_query(4))
        root = tdp.root_stages[0]
        assert len(tdp.children_stages[root]) == 3
        for state_conns in tdp.child_conns[root]:
            assert len(state_conns) == 3

    def test_branch_index_consistency(self):
        db = uniform_database(4, 30, domain_size=4, seed=3)
        tdp = build_tdp_for_query(db, star_query(4))
        for stage in range(tdp.num_stages):
            for idx, child in enumerate(tdp.children_stages[stage]):
                assert tdp.branch_index[child] == idx

    def test_pi1_product_over_branches(self):
        db = uniform_database(3, 25, domain_size=3, seed=5)
        tdp = build_tdp_for_query(db, star_query(3))
        root = tdp.root_stages[0]
        for state in range(len(tdp.tuples[root])):
            conns = tdp.child_conns[root][state]
            expected = sum(conn.min_value for conn in conns)
            assert tdp.pi1[root][state] == pytest.approx(expected)

    def test_solution_weight_and_assignment(self):
        db = uniform_database(2, 20, domain_size=3, seed=9)
        query = path_query(2)
        tdp = build_tdp_for_query(db, query)
        from repro.anyk.batch import enumerate_all_solutions

        for weight, states in enumerate_all_solutions(tdp):
            assert tdp.solution_weight(states) == pytest.approx(weight)
            assignment = tdp.assignment(states)
            assert set(assignment) == {"x1", "x2", "x3"}
            witness = tdp.witness(states)
            assert len(witness) == 2

    def test_share_connectors_false_gives_private_copies(self):
        db = uniform_database(2, 20, domain_size=2, seed=11)
        query = path_query(2)
        from repro.query.jointree import build_join_tree

        tree = build_join_tree(query)
        shared = build_tdp(db, tree)
        private = build_tdp(db, tree, share_connectors=False)
        root_s = shared.root_stages[0]

        def distinct_conns(tdp):
            ids = set()
            for state_conns in tdp.child_conns[root_s]:
                for conn in state_conns:
                    ids.add(id(conn))
            return len(ids)

        assert distinct_conns(private) >= distinct_conns(shared)
        assert distinct_conns(private) == len(private.tuples[root_s])


class TestRepeatedVariables:
    def test_repeated_var_selection(self):
        rel = Relation("R", 2, [(1, 1), (1, 2), (3, 3)], [1.0, 2.0, 3.0])
        db = Database([rel])
        query = parse_query("Q(x) :- R(x, x)")
        tdp = build_tdp_for_query(db, query)
        assert sorted(tdp.tuples[0]) == [(1, 1), (3, 3)]
