"""Public-API surface tests: QueryResult, dispatch, overlapping unions."""


from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.relation import Relation
from repro.decomposition.base import TreeTask
from repro.enumeration.api import enumerate_union, ranked_enumerate
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from repro.util.counters import OpCounter
from tests.conftest import brute_force, weight_signature


class TestQueryResult:
    def test_fields(self):
        db = uniform_database(2, 10, domain_size=2, seed=1)
        result = next(iter(ranked_enumerate(db, path_query(2))))
        assert set(result.assignment) == {"x1", "x2", "x3"}
        assert result.output_tuple == tuple(
            result.assignment[v] for v in ("x1", "x2", "x3")
        )
        assert len(result.witness) == 2
        assert len(result.witness_ids) == 2
        assert "QueryResult" in repr(result)

    def test_top_level_reexports(self):
        import repro

        for name in (
            "ranked_enumerate",
            "Database",
            "Relation",
            "parse_query",
            "TROPICAL",
            "min_cost_homomorphism",
        ):
            assert hasattr(repro, name), name

    def test_counter_passthrough(self):
        db = uniform_database(2, 15, domain_size=2, seed=2)
        counter = OpCounter()
        list(ranked_enumerate(db, path_query(2), counter=counter))
        assert counter.results > 0
        assert counter.pq_pop > 0


class TestDispatch:
    def test_acyclic_goes_direct(self):
        db = uniform_database(2, 10, domain_size=2, seed=3)
        results = list(ranked_enumerate(db, path_query(2)))
        assert all(r.witness is not None for r in results)

    def test_cycle_goes_through_decomposition(self):
        db = worst_case_cycle_database(4, 8, seed=4)
        results = list(ranked_enumerate(db, cycle_query(4)))
        assert len(results) == 2 * 4 * 4
        assert all(r.witness is not None for r in results)

    def test_cycle_threshold_override(self):
        db = worst_case_cycle_database(4, 8, seed=5)
        default = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, cycle_query(4))
        )
        overridden = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, cycle_query(4), cycle_threshold=10**9)
        )
        assert default == overridden

    def test_weights_unwrapped_from_tiebreaker(self):
        db = worst_case_cycle_database(4, 8, seed=6)
        for r in ranked_enumerate(db, cycle_query(4)):
            assert isinstance(r.weight, float), "tie-break dimension hidden"


class TestOverlappingUnion:
    """The dedup machinery for overlapping decompositions (e.g. PANDA)."""

    def _overlapping_tasks(self, db, query):
        # Two identical single-bag tasks: every output is produced twice.
        task_template = []
        for copy in ("A", "B"):
            relations = []
            lineage = {}
            atoms = []
            for atom in query.atoms:
                base = db[atom.relation_name]
                name = f"{copy}_{atom.relation_name}"
                relations.append(base.rename(name))
                from repro.query.atom import Atom

                atoms.append(Atom(name, atom.variables))
                lineage[name] = [
                    ((query.atoms.index(atom), i),) for i in range(len(base))
                ]
            from repro.query.cq import ConjunctiveQuery

            task_template.append(
                TreeTask(
                    database=Database(relations),
                    query=ConjunctiveQuery(
                        head=query.head, atoms=atoms, name=f"{copy}_{query.name}"
                    ),
                    lineage=lineage,
                    label=copy,
                )
            )
        return task_template

    def test_dedup_removes_cross_member_duplicates(self):
        # Integer weights: exact arithmetic, so dedup is sound.
        rng_db = Database(
            [
                Relation("R1", 2, [(1, 2), (2, 2), (3, 4)], [1.0, 2.0, 3.0]),
                Relation("R2", 2, [(2, 5), (4, 6), (2, 7)], [4.0, 5.0, 6.0]),
            ]
        )
        query = path_query(2)
        tasks = self._overlapping_tasks(rng_db, query)
        from repro.ranking.dioid import TROPICAL

        merged = list(
            enumerate_union(rng_db, query, tasks, TROPICAL, "take2", None,
                            dedup=True)
        )
        expected = brute_force(rng_db, query)
        assert weight_signature(
            (r.weight, r.output_tuple) for r in merged
        ) == weight_signature(expected)

    def test_without_dedup_everything_doubles(self):
        rng_db = Database(
            [
                Relation("R1", 2, [(1, 2)], [1.0]),
                Relation("R2", 2, [(2, 5)], [4.0]),
            ]
        )
        query = path_query(2)
        tasks = self._overlapping_tasks(rng_db, query)
        from repro.ranking.dioid import TROPICAL

        merged = list(
            enumerate_union(rng_db, query, tasks, TROPICAL, "take2", None,
                            dedup=False)
        )
        assert len(merged) == 2
