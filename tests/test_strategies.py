"""Successor-strategy semantics (Section 4.1.3) at the view level."""

import pytest

from repro.anyk.strategies import (
    ALGORITHMS,
    AllStrategy,
    EagerStrategy,
    LazyStrategy,
    Take2Strategy,
)
from repro.dp.graph import ChoiceSet


def make_conn(weights):
    entries = [(w, i, w) for i, w in enumerate(weights)]
    return ChoiceSet(0, 0, entries)


WEIGHTS = [5.0, 1.0, 4.0, 2.0, 3.0]


class TestEager:
    def test_sorted_access(self):
        view = EagerStrategy().view(make_conn(WEIGHTS))
        assert view.entry(0)[0] == 1.0
        assert [view.entry(i)[0] for i in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_successor_is_next(self):
        view = EagerStrategy().view(make_conn(WEIGHTS))
        assert view.successor_positions(0) == (1,)
        assert view.successor_positions(4) == ()


class TestLazy:
    def test_top_two_prefetched(self):
        view = LazyStrategy().view(make_conn(WEIGHTS))
        assert view.lazy.sorted_len() == 2

    def test_converges_to_sorted(self):
        view = LazyStrategy().view(make_conn(WEIGHTS))
        got = []
        pos = view.best_pos()
        while True:
            got.append(view.entry(pos)[0])
            successors = view.successor_positions(pos)
            if not successors:
                break
            pos = successors[0]
        assert got == sorted(WEIGHTS)


class TestTake2:
    def test_heap_never_mutates(self):
        conn = make_conn(WEIGHTS)
        strategy = Take2Strategy()
        view = strategy.view(conn)
        snapshot = list(view.heap)
        for pos in range(len(WEIGHTS)):
            view.entry(pos)
            view.successor_positions(pos)
        assert view.heap == snapshot

    def test_source_entries_untouched(self):
        conn = make_conn(WEIGHTS)
        before = list(conn.entries)
        Take2Strategy().view(conn)
        assert conn.entries == before

    def test_at_most_two_successors(self):
        view = Take2Strategy().view(make_conn(WEIGHTS))
        for pos in range(len(WEIGHTS)):
            assert len(view.successor_positions(pos)) <= 2

    def test_children_are_heavier(self):
        view = Take2Strategy().view(make_conn(WEIGHTS))
        for pos in range(len(WEIGHTS)):
            for succ in view.successor_positions(pos):
                assert view.entry(succ)[0] >= view.entry(pos)[0]

    def test_all_entries_reachable_from_best(self):
        view = Take2Strategy().view(make_conn(WEIGHTS))
        reached = set()
        frontier = [view.best_pos()]
        while frontier:
            pos = frontier.pop()
            reached.add(pos)
            frontier.extend(view.successor_positions(pos))
        assert reached == set(range(len(WEIGHTS)))


class TestAll:
    def test_best_is_min(self):
        view = AllStrategy().view(make_conn(WEIGHTS))
        assert view.entry(view.best_pos())[0] == 1.0

    def test_top_returns_everything_else(self):
        view = AllStrategy().view(make_conn(WEIGHTS))
        succ = view.successor_positions(view.best_pos())
        assert len(succ) == len(WEIGHTS) - 1
        assert view.best_pos() not in succ

    def test_non_top_returns_nothing(self):
        view = AllStrategy().view(make_conn(WEIGHTS))
        for pos in range(len(WEIGHTS)):
            if pos != view.best_pos():
                assert view.successor_positions(pos) == ()


class TestViewCaching:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_views_cached_per_connector(self, name):
        strategy = ALGORITHMS[name]()
        conn = make_conn(WEIGHTS)
        assert strategy.view(conn) is strategy.view(conn)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_fresh_strategy_fresh_views(self, name):
        conn = make_conn(WEIGHTS)
        first = ALGORITHMS[name]().view(conn)
        second = ALGORITHMS[name]().view(conn)
        assert first is not second


class TestChoiceSet:
    def test_min_entry(self):
        conn = make_conn(WEIGHTS)
        assert conn.min_value == 1.0
        assert conn.min_key == 1.0
        assert len(conn) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChoiceSet(0, 0, [])
