"""Prefix streams and cursors: memoization, budgets, invalidation.

The load-bearing claim (ISSUE 3 acceptance): ``prepared.top(5)`` then
``prepared.top(100)`` performs **zero duplicate enumeration steps** —
the second call enumerates answers 6..100 only, and a replayed request
costs no operations at all.  Asserted here via attributed OpCounters.
"""

from __future__ import annotations

import itertools

import pytest

from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.query.builders import path_query
from repro.serve.cursor import Cursor, CursorBudgetExceeded, fetch_all
from repro.util.counters import OpCounter


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


@pytest.fixture
def engine() -> Engine:
    return Engine(uniform_database(3, 40, domain_size=5, seed=42))


# -- prefix sharing in PreparedQuery.top ---------------------------------------


class TestTopPrefixCache:
    def test_top5_then_top100_no_duplicate_steps(self, engine):
        prepared = engine.prepare(path_query(3))
        c_top5, c_top100 = OpCounter(), OpCounter()
        top5 = prepared.top(5, counter=c_top5)
        top100 = prepared.top(100, counter=c_top100)
        assert signature(top100[:5]) == signature(top5)

        # A fresh, uncached enumeration of the same 100 answers is the
        # total-work baseline: the two incremental calls must sum to
        # exactly it — answers 1..5 were not enumerated a second time.
        fresh = OpCounter()
        baseline = list(itertools.islice(prepared.iter(fresh), 100))
        assert signature(baseline) == signature(top100)
        for op in OpCounter.__slots__:
            assert getattr(c_top5, op) + getattr(c_top100, op) == getattr(
                fresh, op
            ), f"duplicate enumeration work in counter {op!r}"

    def test_replayed_top_costs_zero_operations(self, engine):
        prepared = engine.prepare(path_query(3))
        prepared.top(50)
        replay = OpCounter()
        again = prepared.top(50, counter=replay)
        assert len(again) == 50
        assert all(
            getattr(replay, op) == 0 for op in OpCounter.__slots__
        ), f"replay did enumeration work: {replay!r}"

    def test_stream_shared_across_top_calls(self, engine):
        prepared = engine.prepare(path_query(3))
        prepared.top(5)
        prepared.top(10)
        prepared.top(3)
        assert engine.stats.stream_misses == 1
        assert engine.stats.stream_hits == 2
        assert prepared.stream().produced == 10

    def test_negative_k_rejected(self, engine):
        """top(-1) must raise (as islice did), not slice off the tail."""
        prepared = engine.prepare(path_query(2))
        prepared.top(5)
        with pytest.raises(ValueError):
            prepared.top(-1)
        stream = prepared.stream()
        with pytest.raises(ValueError):
            stream.slice(-5, 3)
        with pytest.raises(ValueError):
            stream.get(-1)
        assert prepared.top(0) == []

    def test_iter_stays_fresh_enumeration(self, engine):
        """iter() keeps TT(k) semantics: every run pays its own ops."""
        prepared = engine.prepare(path_query(3))
        first, second = OpCounter(), OpCounter()
        a = list(itertools.islice(prepared.iter(first), 20))
        b = list(itertools.islice(prepared.iter(second), 20))
        assert signature(a) == signature(b)
        assert first.as_dict() == second.as_dict()
        assert first.total_pq_ops() > 0

    def test_mutation_invalidates_stream(self, engine):
        prepared = engine.prepare(path_query(3))
        before = prepared.top(5)
        # A decisively light edge that joins (R2 has x2 = 1 tuples):
        # after invalidation it must dominate the ranking.
        engine.database["R1"].add((1, 1), -1_000_000.0)
        after = prepared.top(5)
        assert engine.stats.stream_misses == 2
        assert signature(after) != signature(before)
        assert after[0].weight < before[0].weight

    def test_algorithms_get_distinct_streams(self, engine):
        take2 = engine.prepare(path_query(3), algorithm="take2")
        lazy = engine.prepare(path_query(3), algorithm="lazy")
        take2.top(10)
        lazy.top(10)
        assert engine.stats.stream_misses == 2
        # ... but still share one physical plan (preprocessing once).
        assert engine.stats.binds == 1


# -- cursors -------------------------------------------------------------------


class TestCursor:
    def test_pagination_matches_uninterrupted_run(self, engine):
        prepared = engine.prepare(path_query(3))
        baseline = signature(itertools.islice(prepared.iter(), 60))
        cursor = prepared.cursor()
        pages = [cursor.fetch(7) for _ in range(5)]
        paged = [r for page in pages for r in page]
        assert signature(paged) == baseline[:35]
        assert cursor.position == 35

    def test_cursors_share_the_stream(self, engine):
        prepared = engine.prepare(path_query(3))
        first = prepared.cursor()
        first.fetch(30)
        replay = OpCounter()
        second = prepared.cursor()
        page = second.fetch(30, counter=replay)
        assert len(page) == 30
        assert all(getattr(replay, op) == 0 for op in OpCounter.__slots__)
        assert first.stream is second.stream

    def test_fetch_to_exhaustion(self, engine):
        prepared = engine.prepare(path_query(2))
        total = len(list(prepared.iter()))
        cursor = prepared.cursor()
        drained = fetch_all(cursor, page_size=17)
        assert len(drained) == total
        assert cursor.exhausted
        assert cursor.fetch(5) == []

    def test_peek_does_not_advance(self, engine):
        cursor = engine.prepare(path_query(2)).cursor()
        peeked = cursor.peek()
        assert cursor.position == 0
        assert signature([cursor.fetch(1)[0]]) == signature([peeked])

    def test_skip_and_rewind_replay(self, engine):
        prepared = engine.prepare(path_query(3))
        baseline = signature(itertools.islice(prepared.iter(), 20))
        cursor = prepared.cursor()
        assert cursor.skip(10) == 10
        tail = cursor.fetch(10)
        assert signature(tail) == baseline[10:20]
        cursor.rewind()
        replay = OpCounter()
        head = cursor.fetch(10, counter=replay)
        assert signature(head) == baseline[:10]
        assert all(getattr(replay, op) == 0 for op in OpCounter.__slots__)

    def test_rewind_bounds(self, engine):
        cursor = engine.prepare(path_query(2)).cursor()
        cursor.fetch(3)
        with pytest.raises(ValueError):
            cursor.rewind(5)
        with pytest.raises(ValueError):
            cursor.rewind(-1)
        cursor.rewind(1)
        assert cursor.position == 1

    def test_budget_enforced_before_work(self, engine):
        cursor = engine.prepare(path_query(3)).cursor(budget=10)
        cursor.fetch(8)
        with pytest.raises(CursorBudgetExceeded):
            cursor.fetch(3)
        # The failed fetch did not advance the cursor.
        assert cursor.position == 8
        assert len(cursor.fetch(2)) == 2
        assert cursor.remaining_budget == 0

    def test_drain_helpers_stop_at_budget(self, engine):
        prepared = engine.prepare(path_query(3))
        assert sum(len(p) for p in prepared.cursor(budget=10).pages(4)) == 10
        assert len(list(prepared.cursor(budget=7))) == 7
        assert len(fetch_all(prepared.cursor(budget=12), page_size=5)) == 12

    def test_budget_tolerates_small_output(self, engine):
        """A fixed page size past the end of a small output must not
        trip the budget when the output fits inside it."""
        prepared = engine.prepare("Q(x1, x2) :- R1(x1, x2), R2(x2, 3)")
        total = len(list(prepared.iter()))
        cursor = prepared.cursor(budget=total + 1)
        served = []
        while True:
            page = cursor.fetch(10)  # 10 may exceed remaining budget
            if not page:
                break
            served.extend(page)
        assert len(served) == total
        assert cursor.exhausted

    def test_stream_stable_across_plan_cache_eviction(self, engine):
        """Re-prepared queries converge on one physical plan: alternating
        top() between old and new handles must not churn the stream."""
        small = Engine(engine.database, max_cached_plans=1)
        p_old = small.prepare(path_query(3))
        p_old.top(10)
        small.prepare(path_query(2)).top(1)  # evicts p_old's entries
        p_new = small.prepare(path_query(3))
        assert p_new is not p_old
        p_new.top(10)
        misses = small.stats.stream_misses
        for _ in range(3):
            p_old.top(10)
            p_new.top(10)
        assert small.stats.stream_misses == misses
        assert p_old.bind() is p_new.bind()

    def test_snapshot_pins_database_version(self, engine):
        prepared = engine.prepare(path_query(3))
        baseline = signature(itertools.islice(prepared.iter(), 10))
        cursor = prepared.cursor()
        first_page = cursor.fetch(5)
        engine.database["R1"].add((1, 1), -100.0)
        # Pinned stream: pagination continues the pre-mutation snapshot
        # (pages never shift under a client mid-pagination) ...
        next_page = cursor.fetch(5)
        assert signature(first_page) + signature(next_page) == baseline
        # ... while refresh() re-pins to the current version, where the
        # new lightest edge dominates the ranking.
        cursor.refresh()
        assert cursor.position == 0
        assert round(cursor.fetch(1)[0].weight, 6) == round(
            prepared.top(1)[0].weight, 6
        )

    def test_pages_iteration(self, engine):
        prepared = engine.prepare(path_query(2))
        total = len(list(prepared.iter()))
        sizes = [len(p) for p in prepared.cursor().pages(13)]
        assert sum(sizes) == total
        assert all(s == 13 for s in sizes[:-1])


class TestCursorOverSelections:
    def test_cursor_on_query_with_constants(self, engine):
        prepared = engine.prepare("Q(x1, x2) :- R1(x1, x2), R2(x2, 3)")
        expected = signature(prepared.iter())
        cursor = prepared.cursor()
        assert signature(fetch_all(cursor, 4)) == expected


# -- budgeted stepping on the raw enumerators ----------------------------------


class TestEnumeratorStep:
    @pytest.mark.parametrize(
        "algorithm", ["take2", "lazy", "eager", "all", "recursive", "batch"]
    )
    def test_step_batches_concatenate_to_full_stream(self, engine, algorithm):
        from repro.anyk.base import make_enumerator
        from repro.dp.builder import build_tdp_for_query

        tdp = build_tdp_for_query(engine.database, path_query(2))
        baseline = [
            (round(r.weight, 6), r.states)
            for r in make_enumerator(tdp, algorithm)
        ]
        enumerator = make_enumerator(tdp, algorithm)
        assert not enumerator.exhausted
        stepped = []
        while not enumerator.exhausted:
            batch = enumerator.step(7)
            assert len(batch) <= 7
            stepped.extend(batch)
        assert [(round(r.weight, 6), r.states) for r in stepped] == baseline
        # Stepping a dry enumerator stays a cheap no-op.
        assert enumerator.step(5) == []
        assert enumerator.exhausted

    def test_step_interleaves_with_iteration(self, engine):
        from repro.anyk.base import make_enumerator
        from repro.dp.builder import build_tdp_for_query

        tdp = build_tdp_for_query(engine.database, path_query(2))
        baseline = [r.states for r in make_enumerator(tdp, "take2")]
        enumerator = make_enumerator(tdp, "take2")
        mixed = [r.states for r in enumerator.step(3)]
        mixed.append(next(enumerator).states)
        mixed.extend(r.states for r in enumerator.step(4))
        assert mixed == baseline[:8]


def test_cursor_repr_and_stream_stats(engine):
    prepared = engine.prepare(path_query(2))
    cursor = prepared.cursor()
    cursor.fetch(5)
    assert "Cursor(" in repr(cursor)
    stats = cursor.stream.stats()
    assert stats["produced"] >= 5
    assert stats["extensions"] >= 5
    assert isinstance(Cursor(prepared), Cursor)
