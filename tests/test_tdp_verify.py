"""TDP.verify() invariant checks across all construction paths."""

import pytest

from repro.data.generators import (
    example6_database,
    uniform_database,
    worst_case_cycle_database,
)
from repro.decomposition.cycle import decompose_cycle
from repro.dp.builder import build_tdp, build_tdp_for_query
from repro.dp.direct import DPProblem
from repro.dp.theta import build_theta_path, comparison_predicate
from repro.data.relation import Relation
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.jointree import build_join_tree
from repro.query.parser import parse_query
from repro.ranking.dioid import MAX_PLUS


class TestVerifyHappyPaths:
    @pytest.mark.parametrize("builder,ell", [
        (path_query, 3), (path_query, 5), (star_query, 4),
    ])
    def test_query_builds_verify(self, builder, ell):
        db = uniform_database(ell, 30, domain_size=4, seed=ell)
        build_tdp_for_query(db, builder(ell)).verify()

    def test_cartesian_build_verifies(self):
        db = example6_database()
        query = parse_query("Q(a, b, c) :- R1(a), R2(b), R3(c)")
        build_tdp_for_query(db, query).verify()

    def test_max_plus_build_verifies(self):
        db = uniform_database(3, 25, domain_size=3, seed=7)
        build_tdp_for_query(db, path_query(3), dioid=MAX_PLUS).verify()

    def test_unshared_connectors_verify(self):
        db = uniform_database(2, 20, domain_size=3, seed=8)
        tree = build_join_tree(path_query(2))
        build_tdp(db, tree, share_connectors=False).verify()

    def test_decomposition_bags_verify(self):
        db = worst_case_cycle_database(4, 12, seed=9)
        for task in decompose_cycle(db, cycle_query(4)):
            build_tdp(task.database, build_join_tree(task.query)).verify()

    def test_theta_build_verifies(self):
        r = Relation("R", 2, [(1, 10), (2, 20)], [1.0, 2.0])
        s = Relation("S", 2, [(15, 7), (25, 8)], [0.1, 0.2])
        tdp = build_theta_path([r, s], [comparison_predicate(1, "<", 0)])
        tdp.verify()

    def test_direct_build_verifies(self):
        dp = DPProblem()
        s1 = dp.add_stage(parent=None)
        s2 = dp.add_stage()
        a = dp.add_state(s1, 1.0)
        b = dp.add_state(s2, 2.0)
        dp.add_decision(a, b)
        dp.compile().verify()

    def test_empty_tdp_verifies(self):
        from repro.data.database import Database

        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        build_tdp_for_query(db, path_query(2)).verify()


class TestVerifyCatchesCorruption:
    def _tdp(self):
        db = uniform_database(2, 15, domain_size=3, seed=10)
        return build_tdp_for_query(db, path_query(2))

    def test_detects_broken_pi1(self):
        tdp = self._tdp()
        stage = [s for s in range(2) if tdp.children_stages[s]][0]
        tdp.pi1[stage][0] = -12345.0
        with pytest.raises(AssertionError):
            tdp.verify()

    def test_detects_broken_min_entry(self):
        tdp = self._tdp()
        conn = next(iter(tdp.root_conn.values()))
        conn.min_entry = (float("inf"), 0, float("inf"))
        with pytest.raises(AssertionError):
            tdp.verify()

    def test_detects_broken_best_weight(self):
        tdp = self._tdp()
        tdp.best_weight = -1.0
        with pytest.raises(AssertionError):
            tdp.verify()
