"""Free-connex min-weight projections across many query structures.

Each case checks three things against the brute-force oracle: the set
of distinct head assignments, the minimum witness weight per assignment,
and the ranked emission order.
"""

import math
import random

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate
from repro.enumeration.projections import build_free_connex_plan
from repro.query.parser import parse_query
from tests.conftest import brute_force


def random_db(specs, seed):
    rng = random.Random(seed)
    db = Database()
    for name, arity, n, domain in specs:
        rel = Relation(name, arity)
        for _ in range(n):
            rel.add(
                tuple(rng.randint(1, domain) for _ in range(arity)),
                round(rng.uniform(0, 20), 3),
            )
        db.add(rel)
    return db


def check_min_weight(db, text):
    query = parse_query(text)
    assert query.is_free_connex(), text
    full = brute_force(db, query, head=query.head)
    oracle: dict = {}
    for weight, output in full:
        oracle[output] = min(weight, oracle.get(output, math.inf))
    results = list(ranked_enumerate(db, query, projection="min_weight"))
    weights = [r.weight for r in results]
    assert weights == sorted(weights), "ranked order"
    got = {r.output_tuple: r.weight for r in results}
    assert set(got) == set(oracle), "distinct head assignments"
    for output, weight in got.items():
        assert weight == pytest.approx(oracle[output]), output
    return results


class TestShapes:
    def test_existential_tail(self):
        db = random_db([("R", 2, 20, 3), ("S", 2, 20, 3), ("T", 2, 20, 3)], 1)
        check_min_weight(db, "Q(a, b) :- R(a, b), S(b, c), T(c, d)")

    def test_existential_star_leaves(self):
        db = random_db([("R", 2, 20, 3), ("S", 2, 20, 3), ("T", 2, 20, 3)], 2)
        check_min_weight(db, "Q(a) :- R(a, b), S(a, c), T(a, d)")

    def test_two_existential_subtrees(self):
        db = random_db(
            [("R", 2, 15, 3), ("S", 2, 15, 3), ("T", 2, 15, 3), ("U", 2, 15, 3)],
            3,
        )
        check_min_weight(db, "Q(a, b) :- R(a, b), S(a, x), T(b, y), U(y, z)")

    def test_wide_atom_partial_projection(self):
        db = random_db([("R", 3, 25, 3), ("S", 2, 20, 3)], 4)
        check_min_weight(db, "Q(a, b) :- R(a, b, x), S(x, y)")

    def test_head_only_in_deep_atom(self):
        db = random_db([("R", 2, 20, 3), ("S", 2, 20, 3)], 5)
        check_min_weight(db, "Q(b) :- R(a, b), S(b, c)")

    def test_single_atom_projection(self):
        db = random_db([("R", 3, 25, 3)], 6)
        check_min_weight(db, "Q(a) :- R(a, x, y)")

    def test_all_head_variables_trivial(self):
        # Fully free query: min-weight degenerates to merging duplicate
        # tuples; head equals all variables.
        db = random_db([("R", 2, 20, 3), ("S", 2, 20, 3)], 7)
        check_min_weight(db, "Q(a, b, c) :- R(a, b), S(b, c)")

    def test_disconnected_existential_component(self):
        db = random_db([("R", 2, 15, 3), ("S", 2, 15, 3)], 8)
        check_min_weight(db, "Q(a, b) :- R(a, b), S(x, y)")

    def test_self_join_projection(self):
        db = random_db([("E", 2, 20, 4)], 9)
        check_min_weight(db, "Q(a, b) :- E(a, b), E(b, c)")


class TestPlanProperties:
    def test_plan_relations_linear_in_input(self):
        db = random_db([("R", 2, 50, 5), ("S", 2, 50, 5)], 10)
        query = parse_query("Q(a, b) :- R(a, b), S(b, c)")
        plan = build_free_connex_plan(db, query)
        total = sum(len(rel) for rel in plan.database)
        assert total <= 100, "plan relations bounded by the input size"

    def test_offset_is_identity_without_existential_components(self):
        db = random_db([("R", 2, 15, 3), ("S", 2, 15, 3)], 11)
        query = parse_query("Q(a, b) :- R(a, b), S(b, c)")
        plan = build_free_connex_plan(db, query)
        assert plan.offset == 0.0

    def test_offset_carries_component_minimum(self):
        r = Relation("R", 2, [(1, 2)], [1.0])
        s = Relation("S", 2, [(7, 7), (8, 8)], [5.0, 3.0])
        db = Database([r, s])
        query = parse_query("Q(a, b) :- R(a, b), S(x, y)")
        plan = build_free_connex_plan(db, query)
        assert plan.offset == 3.0

    def test_min_weight_works_with_every_algorithm(self):
        db = random_db([("R", 2, 20, 3), ("S", 2, 20, 3)], 12)
        query = parse_query("Q(a) :- R(a, b), S(b, c)")
        reference = [
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, projection="min_weight")
        ]
        for algorithm in ("lazy", "eager", "all", "recursive", "batch"):
            got = [
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(
                    db, query, projection="min_weight", algorithm=algorithm
                )
            ]
            assert [w for w, _ in got] == pytest.approx(
                [w for w, _ in reference]
            ), algorithm
