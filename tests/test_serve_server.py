"""The asyncio JSON-lines server: round trips, errors, concurrent clients."""

from __future__ import annotations

import socket as socketlib
import struct
import threading
import time

import pytest

from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.query.builders import path_query
from repro.serve import ServeClient, ServeClientError, ServerThread
from repro.serve import protocol
from repro.serve.protocol import decode, encode, result_message
from repro.enumeration.result import QueryResult

QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


def wire_signature(rows):
    """The client-side form of :func:`signature` (JSON round-tripped)."""
    return [
        (
            round(row["weight"], 6),
            tuple(row["assignment"][v] for v in ("x1", "x2", "x3", "x4")),
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def engine():
    return Engine(uniform_database(3, 40, domain_size=5, seed=9))


@pytest.fixture(scope="module")
def server(engine):
    with ServerThread(engine, slice_size=8) as address:
        yield address


@pytest.fixture
def client(server):
    with ServeClient(*server) as c:
        yield c


# -- protocol helpers ----------------------------------------------------------


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "fetch", "n": 5, "weights": (1.0, 2)}
        assert decode(encode(message)) == {
            "op": "fetch", "n": 5, "weights": [1.0, 2],
        }

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            decode(b"[1, 2, 3]")

    def test_result_message_tuples_become_arrays(self):
        result = QueryResult(
            (3.0, 1.0), {"x": 1, "y": (2, 3)}, ("x", "y"),
            witness_ids=(0, 4),
        )
        payload = decode(encode(result_message(7, result)))["result"]
        assert payload == {
            "index": 7,
            "weight": [3.0, 1.0],
            "assignment": {"x": 1, "y": [2, 3]},
            "witness_ids": [0, 4],
        }


# -- smoke: the CI round trip --------------------------------------------------


def test_smoke_round_trip_ranked_order(engine, client):
    """Start server, prepare, fetch, assert ranked order (the CI smoke)."""
    assert client.ping()
    response = client.prepare("smoke", QUERY)
    assert response["strategy"] == "acyclic-tdp"
    page = client.fetch("smoke", response["cursor"], 25)
    assert len(page) == 25
    weights = [row["weight"] for row in page]
    assert weights == sorted(weights), "server stream is not ranked"
    assert wire_signature(page.results) == signature(
        engine.prepare(path_query(3)).top(25)
    )
    client.close_session("smoke")


# -- sessions and pagination over the wire -------------------------------------


class TestServerSessions:
    def test_pagination_is_stateful(self, engine, client):
        cursor = client.prepare("paging", QUERY)["cursor"]
        first = client.fetch("paging", cursor, 10)
        second = client.fetch("paging", cursor, 10)
        assert first.position == 10
        assert second.position == 20
        assert wire_signature(first.results + second.results) == signature(
            engine.prepare(path_query(3)).top(20)
        )

    def test_fetch_to_exhaustion_sets_flag(self, engine, client):
        total = len(list(engine.prepare(path_query(2)).iter()))
        cursor = client.prepare(
            "drain", "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"
        )["cursor"]
        rows = client.fetch_all("drain", cursor, page_size=64)
        assert len(rows) == total
        page = client.fetch("drain", cursor, 5)
        assert page.served == 0
        assert page.exhausted

    def test_two_connections_one_session_state(self, server):
        with ServeClient(*server) as c1, ServeClient(*server) as c2:
            cursor = c1.prepare("shared", QUERY)["cursor"]
            c1.fetch("shared", cursor, 5)
            # The session (and cursor position) lives server-side.
            page = c2.fetch("shared", cursor, 5)
            assert page.position == 10

    def test_explain_over_the_wire(self, client):
        cursor = client.prepare("explain", QUERY)["cursor"]
        plan = client.explain("explain", cursor)
        assert "strategy: acyclic-tdp" in plan
        assert "physical" in plan

    def test_cursor_budget_clamps_pages(self, client):
        cursor = client.prepare("capped", QUERY, budget=7)["cursor"]
        page = client.fetch("capped", cursor, 100)
        assert page.served == 7
        assert client.fetch("capped", cursor, 100).served == 0

    def test_stats_surface(self, client):
        client.prepare("statse", QUERY)
        stats = client.stats()
        assert stats["session_count"] >= 1
        assert "engine" in stats and "scheduler" in stats


class TestServerErrors:
    def test_unknown_op(self, client):
        with pytest.raises(ServeClientError, match="unknown_op"):
            client.request({"op": "teleport"})

    def test_unknown_session(self, client):
        with pytest.raises(ServeClientError, match="unknown_session"):
            client.fetch("never-created", "c0", 1)

    def test_bad_query_text(self, client):
        with pytest.raises(ServeClientError, match="bad_query"):
            client.prepare("errs", "THIS IS NOT DATALOG")

    def test_unknown_relation(self, client):
        with pytest.raises(ServeClientError):
            cursor = client.prepare("errs", "Q(x) :- Nope(x, x)")["cursor"]
            client.fetch("errs", cursor, 1)

    def test_bad_dioid_name(self, client):
        with pytest.raises(ServeClientError, match="bad_request"):
            client.prepare("errs", QUERY, dioid="hyperbolic")

    def test_connection_survives_errors(self, client):
        for _ in range(3):
            with pytest.raises(ServeClientError):
                client.request({"op": "teleport"})
        assert client.ping()

    def test_malformed_json_line(self, client):
        client._file.write(b"{not json}\n")
        client._file.flush()
        message = client._read()
        assert message["ok"] is False
        assert message["error"] == "bad_request"
        assert client.ping()


# -- wire-protocol regressions -------------------------------------------------


class TestFrameLimit:
    """Oversized request lines must be a protocol error, not a dead task.

    Regression: ``reader.readline()`` with the default 64 KiB stream
    limit raised an uncaught ``ValueError`` on longer lines, silently
    killing the connection handler.
    """

    @pytest.fixture
    def small_frame_server(self, engine):
        with ServerThread(engine, max_frame_bytes=4096) as address:
            yield address

    def test_oversized_frame_replies_bad_request(self, small_frame_server):
        with ServeClient(*small_frame_server) as client:
            line = b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n'
            client._file.write(line)
            client._file.flush()
            message = client._read()
            assert message["ok"] is False
            assert message["error"] == "bad_request"
            assert "exceeds 4096" in message["message"]
            # The connection (and the handler task) survives.
            assert client.ping()

    def test_oversized_frame_split_across_chunks(self, small_frame_server):
        """A frame that dribbles in past the cap is rejected once."""
        with ServeClient(*small_frame_server) as client:
            client._file.write(b'{"op": "ping", "pad": "')
            client._file.flush()
            for _ in range(8):
                client._file.write(b"y" * 1024)
                client._file.flush()
            client._file.write(b'"}\n')
            client._file.flush()
            message = client._read()
            assert message["error"] == "bad_request"
            assert client.ping()

    def test_default_limit_allows_large_valid_frames(self, server):
        """Frames beyond the old 64 KiB readline limit now work."""
        with ServeClient(*server) as client:
            message = client.request(
                {"op": "ping", "pad": "z" * (96 * 1024)}
            )
            assert message["ok"] is True

    def test_frame_limit_must_be_positive(self, engine):
        from repro.serve.server import ServeServer

        with pytest.raises(ValueError, match="max_frame_bytes"):
            ServeServer(engine, max_frame_bytes=0)


class TestBooleanFieldRegressions:
    """JSON ``true``/``false`` must not pass integer validation.

    Regression: ``isinstance(True, int)`` holds, so ``{"shards": true}``
    used to prepare a 1-shard plan and ``{"n": true}`` fetched one row.
    """

    def test_boolean_shards_rejected(self, client):
        with pytest.raises(ServeClientError, match="bad_request"):
            client.request(
                {"op": "prepare", "session": "bools", "query": QUERY,
                 "shards": True}
            )

    def test_boolean_fetch_size_rejected(self, client):
        cursor = client.prepare("bools", QUERY)["cursor"]
        for bad in (True, False):
            with pytest.raises(ServeClientError, match="bad_request"):
                client.request(
                    {"op": "fetch", "session": "bools", "cursor": cursor,
                     "n": bad}
                )

    def test_valid_int_helper(self):
        assert protocol.valid_int(3)
        assert protocol.valid_int(0)
        assert not protocol.valid_int(True)
        assert not protocol.valid_int(False)
        assert not protocol.valid_int(3.0)
        assert not protocol.valid_int("3")


class TestLifecycleRegressions:
    def test_stop_before_start_is_a_noop(self, engine):
        """Regression: ``stop()`` raised AttributeError when ``start()``
        never ran (``_stop_requested`` still ``None``)."""
        thread = ServerThread(engine)
        thread.stop()  # must not raise

    def test_stop_twice_after_start(self, engine):
        thread = ServerThread(engine)
        thread.start()
        thread.stop()
        thread.stop()  # second stop is also a no-op

    def test_stop_closes_sessions(self, engine):
        """Regression: stopping the server leaked sessions (and their
        cursors' engine streams) into the next server generation."""
        thread = ServerThread(engine)
        address = thread.start()
        with ServeClient(*address) as client:
            client.prepare("leaky", QUERY)
            assert "leaky" in thread.server.manager.session_names()
        thread.stop()
        assert thread.server.manager.session_names() == []


class TestDisconnectMidFetch:
    def test_client_disconnect_mid_fetch_rewinds_cursor(self, engine, server):
        """A vanished client aborts its fetch; undelivered results are
        rewound so a successor resumes the bit-identical stream."""
        raw = socketlib.create_connection(server, timeout=30)
        handle = raw.makefile("rwb")
        handle.write(
            encode({"op": "prepare", "session": "dcx", "query": QUERY})
        )
        handle.flush()
        response = decode(handle.readline())
        assert response["ok"], response
        cursor = response["cursor"]
        # Request a big page, then vanish with an RST (SO_LINGER 0) so
        # the server's next write fails instead of filling OS buffers.
        handle.write(
            encode({"op": "fetch", "session": "dcx", "cursor": cursor,
                    "n": 2000})
        )
        handle.flush()
        raw.setsockopt(
            socketlib.SOL_SOCKET, socketlib.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
        handle.close()  # makefile holds an fd ref; close it first
        raw.close()

        with ServeClient(*server) as client:
            # Wait for the aborted fetch to settle (position stable).
            position = last = None
            deadline = time.time() + 10
            while time.time() < deadline:
                position = client.fetch("dcx", cursor, 0).position
                if position == last:
                    break
                last = position
                time.sleep(0.05)
            assert position is not None and position < 2000, (
                "fetch was never aborted"
            )
            # The session survives, and the continuation is exactly the
            # baseline stream from the rewound position.
            page = client.fetch("dcx", cursor, 10)
            baseline = signature(
                engine.prepare(path_query(3)).top(position + 10)
            )
            assert wire_signature(page.results) == baseline[position:]


class TestEdgePolicy:
    """Auth/throttle enforcement on the TCP transport (shared policy)."""

    @pytest.fixture
    def guarded(self, engine):
        from repro.serve import AccessPolicy

        policy = AccessPolicy(auth_token="secret")
        with ServerThread(engine, policy=policy) as address:
            yield address, policy

    def test_missing_token_rejected_at_edge(self, guarded):
        address, policy = guarded
        with ServeClient(*address) as client:
            with pytest.raises(ServeClientError, match="unauthorized"):
                client.prepare("locked", QUERY)
        assert policy.denied_auth >= 1

    def test_token_grants_access_and_ping_stays_open(self, guarded):
        address, _ = guarded
        with ServeClient(*address, token="secret") as client:
            assert client.prepare("granted", QUERY)["ok"]
        with ServeClient(*address) as anonymous:
            assert anonymous.ping()  # liveness is never authenticated

    def test_throttled_fetch_consumes_no_scheduler_slice(self, engine):
        from repro.serve import AccessPolicy

        clock = [0.0]  # frozen injectable clock: no token refill
        thread = ServerThread(engine, policy=AccessPolicy(
            rate_limit=1.0, burst=2, clock=lambda: clock[0]
        ))
        address = thread.start()
        try:
            with ServeClient(*address) as client:
                cursor = client.prepare("limited2", QUERY)["cursor"]
                client.fetch("limited2", cursor, 5)  # burst exhausted
                slices_before = thread.server.manager.scheduler.slices
                with pytest.raises(ServeClientError, match="throttled"):
                    client.fetch("limited2", cursor, 5)
                assert (
                    thread.server.manager.scheduler.slices == slices_before
                ), "throttled fetch consumed a scheduler slice"
                clock[0] += 10.0  # refill the bucket
                assert client.fetch("limited2", cursor, 5).served == 5
        finally:
            thread.stop()


# -- concurrency over the wire -------------------------------------------------


class TestServeCLI:
    def test_parser_accepts_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "data/", "--port", "0", "--max-sessions", "8",
                "--ttl", "60", "--budget", "5000", "--slice", "16",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_sessions == 8
        assert args.ttl == 60.0
        assert args.budget == 5000
        assert args.slice == 16

    def test_serve_requires_a_data_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--backend", "sqlite"])  # missing --db-path
        with pytest.raises(SystemExit):
            main(["serve"])  # missing CSV directory


class TestConcurrentClients:
    def test_eight_sessions_bit_identical_prefixes(self, engine, server):
        """≥8 concurrent sessions stream bit-identical ranked prefixes."""
        k = 60
        baseline = signature(engine.prepare(path_query(3)).top(k))
        outputs: dict[str, list] = {}
        errors: list[Exception] = []

        def worker(name: str) -> None:
            try:
                with ServeClient(*server) as c:
                    cursor = c.prepare(name, QUERY)["cursor"]
                    rows: list[dict] = []
                    while len(rows) < k:
                        page = c.fetch(name, cursor, 12)
                        rows.extend(page.results)
                        if page.exhausted:
                            break
                    outputs[name] = wire_signature(rows[:k])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"client-{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(outputs) == 8
        for name, rows in outputs.items():
            assert rows == baseline, f"{name} diverged from baseline"

    def test_interleaved_algorithms_share_binding(self, engine, server):
        before = engine.stats.binds
        with ServeClient(*server) as c1, ServeClient(*server) as c2:
            cur1 = c1.prepare("alg-a", QUERY, algorithm="take2")["cursor"]
            cur2 = c2.prepare("alg-b", QUERY, algorithm="recursive")["cursor"]
            rows1 = c1.fetch("alg-a", cur1, 15)
            rows2 = c2.fetch("alg-b", cur2, 15)
        assert wire_signature(rows1.results) == wire_signature(rows2.results)
        # Same physical key: at most one (possibly zero, if an earlier
        # test already bound it) new preprocessing pass.
        assert engine.stats.binds <= before + 1
