"""Direct DP construction tests: the paper's Fig 1 and Fig 7 instances."""

import random

import pytest

from repro.anyk.base import make_enumerator
from repro.dp.direct import DPProblem, k_lightest_paths
from tests.conftest import ALL_ALGORITHMS


def figure1_problem():
    """Fig 1: the Cartesian product of Example 6 as a serial chain."""
    dp = DPProblem()
    s1 = dp.add_stage(parent=None)
    s2 = dp.add_stage()
    s3 = dp.add_stage()
    h1 = [dp.add_state(s1, float(v), v) for v in (1, 2, 3)]
    h2 = [dp.add_state(s2, float(v), v) for v in (10, 20, 30)]
    h3 = [dp.add_state(s3, float(v), v) for v in (100, 200, 300)]
    for a in h1:
        for b in h2:
            dp.add_decision(a, b)
    for b in h2:
        for c in h3:
            dp.add_decision(b, c)
    return dp


class TestFigure1:
    def test_best_solution_is_111(self):
        tdp = figure1_problem().compile()
        assert tdp.best_weight == 111.0

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_full_ranked_enumeration(self, algorithm):
        tdp = figure1_problem().compile()
        got = [r.weight for r in make_enumerator(tdp, algorithm)]
        expected = sorted(
            a + b + c
            for a in (1, 2, 3)
            for b in (10, 20, 30)
            for c in (100, 200, 300)
        )
        assert got == pytest.approx([float(w) for w in expected])

    def test_example9_first_results(self):
        """Example 9: results 111, 112, ... with the right witnesses."""
        tdp = figure1_problem().compile()
        results = make_enumerator(tdp, "take2").top(3)
        labels = [
            [tdp.tuples[s][i][0] for s, i in enumerate(r.states)]
            for r in results
        ]
        assert labels[0] == [1, 10, 100]
        assert labels[1] == [2, 10, 100]
        assert results[2].weight == 113.0


class TestFigure7Tree:
    def test_tree_structure_solution(self):
        """A Fig 7-like tree: root with a chain branch and a leaf branch."""
        dp = DPProblem()
        s1 = dp.add_stage(parent=None)
        s2 = dp.add_stage(parent=s1)
        s3 = dp.add_stage(parent=s2)
        s4 = dp.add_stage(parent=s1)
        a1 = dp.add_state(s1, 1.0, "a1")
        a2 = dp.add_state(s1, 5.0, "a2")
        b1 = dp.add_state(s2, 2.0, "b1")
        b2 = dp.add_state(s2, 0.5, "b2")
        c1 = dp.add_state(s3, 3.0, "c1")
        d1 = dp.add_state(s4, 4.0, "d1")
        d2 = dp.add_state(s4, 1.5, "d2")
        dp.add_decision(a1, b1)
        dp.add_decision(a2, b2)
        dp.add_decision(b1, c1)
        dp.add_decision(b2, c1)
        dp.add_decision(a1, d1)
        dp.add_decision(a2, d2)
        tdp = dp.compile()
        results = [
            (r.weight, tuple(tdp.tuples[s][i][0] for s, i in enumerate(r.states)))
            for r in make_enumerator(tdp, "recursive")
        ]
        # Two full solutions: (a1,b1,c1,d1)=10, (a2,b2,c1,d2)=10.
        assert sorted(w for w, _ in results) == [10.0, 10.0]
        assert {labels for _, labels in results} == {
            ("a1", "b1", "c1", "d1"),
            ("a2", "b2", "c1", "d2"),
        }

    def test_dead_state_pruning(self):
        dp = DPProblem()
        s1 = dp.add_stage(parent=None)
        s2 = dp.add_stage()
        a1 = dp.add_state(s1, 1.0)
        a2 = dp.add_state(s1, 2.0)  # no outgoing decision: dead
        b1 = dp.add_state(s2, 1.0)
        dp.add_decision(a1, b1)
        tdp = dp.compile()
        assert len(tdp.tuples[0]) == 1

    def test_empty_problem_errors(self):
        with pytest.raises(ValueError, match="no stages"):
            DPProblem().compile()

    def test_validation(self):
        dp = DPProblem()
        s1 = dp.add_stage(parent=None)
        s2 = dp.add_stage()
        a = dp.add_state(s1, 1.0)
        b = dp.add_state(s2, 1.0)
        with pytest.raises(ValueError, match="unknown parent stage"):
            dp.add_stage(parent=99)
        with pytest.raises(ValueError, match="not a child"):
            dp.add_decision(b, a)
        with pytest.raises(ValueError, match="unknown state"):
            dp.add_decision((s1, 5), b)

    def test_empty_output(self):
        dp = DPProblem()
        s1 = dp.add_stage(parent=None)
        s2 = dp.add_stage()
        dp.add_state(s1, 1.0)
        dp.add_state(s2, 1.0)
        tdp = dp.compile()  # no decisions at all
        assert tdp.is_empty()
        assert list(make_enumerator(tdp, "take2")) == []


class TestKLightestPaths:
    def test_matches_brute_force(self):
        rng = random.Random(1)
        stages = [
            [(f"n{i}_{j}", round(rng.uniform(0, 9), 2)) for j in range(4)]
            for i in range(3)
        ]
        edges = [
            {(a, b) for a in range(4) for b in range(4) if rng.random() < 0.6}
            for _ in range(2)
        ]
        got = k_lightest_paths(stages, edges)
        expected = sorted(
            (
                stages[0][a][1] + stages[1][b][1] + stages[2][c][1],
                [stages[0][a][0], stages[1][b][0], stages[2][c][0]],
            )
            for a in range(4)
            for b in range(4)
            for c in range(4)
            if (a, b) in edges[0] and (b, c) in edges[1]
        )
        assert [w for w, _ in got] == pytest.approx([w for w, _ in expected])
        assert sorted(map(tuple, (p for _, p in got))) == sorted(
            map(tuple, (p for _, p in expected))
        )

    def test_k_limit(self):
        stages = [[("a", 1.0), ("b", 2.0)], [("c", 1.0), ("d", 5.0)]]
        edges = [{(0, 0), (0, 1), (1, 0), (1, 1)}]
        top2 = k_lightest_paths(stages, edges, k=2)
        assert [w for w, _ in top2] == [2.0, 3.0]
        assert top2[0][1] == ["a", "c"]

    def test_different_algorithms_agree(self):
        stages = [
            [(j, float(j)) for j in range(5)],
            [(j, float(10 * j)) for j in range(5)],
        ]
        edges = [{(a, b) for a in range(5) for b in range(5) if (a + b) % 2}]
        reference = k_lightest_paths(stages, edges, algorithm="batch")
        for algorithm in ("take2", "lazy", "recursive"):
            got = k_lightest_paths(stages, edges, algorithm=algorithm)
            assert [w for w, _ in got] == pytest.approx(
                [w for w, _ in reference]
            )
