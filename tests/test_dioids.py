"""Selective-dioid axioms and implementations (Definition 3, Section 6.4).

Property-based tests verify the semiring axioms on random samples for
each dioid; the lexicographic and tie-breaking dioids get additional
structure tests because the algorithms rely on them subtly.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ranking.dioid import (
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    TROPICAL,
    LexicographicDioid,
    TieBreakingDioid,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)

NUMERIC_DIOIDS = [TROPICAL, MAX_PLUS]


@pytest.mark.parametrize("dioid", NUMERIC_DIOIDS + [MAX_TIMES, BOOLEAN])
class TestIdentities:
    def test_one_is_times_neutral(self, dioid):
        for x in self._samples(dioid):
            assert dioid.times(x, dioid.one) == x
            assert dioid.times(dioid.one, x) == x

    def test_zero_is_plus_neutral(self, dioid):
        for x in self._samples(dioid):
            assert dioid.plus(x, dioid.zero) == x
            assert dioid.plus(dioid.zero, x) == x

    def test_zero_absorbs_times(self, dioid):
        for x in self._samples(dioid):
            assert dioid.times(x, dioid.zero) == dioid.zero
            assert dioid.times(dioid.zero, x) == dioid.zero

    @staticmethod
    def _samples(dioid):
        if dioid is BOOLEAN:
            return [True, False]
        if dioid is MAX_TIMES:
            return [0.0, 0.5, 1.0, 3.25, 100.0]
        return [-5.0, 0.0, 1.0, 2.5, 1000.0]


@given(x=finite_floats, y=finite_floats, z=finite_floats)
def test_tropical_axioms(x, y, z):
    d = TROPICAL
    assert d.plus(x, y) in (x, y), "plus must be selective"
    assert d.plus(x, y) == min(x, y)
    assert d.times(d.plus(x, y), z) == pytest.approx(
        d.plus(d.times(x, z), d.times(y, z))
    ), "distributivity"
    assert d.times(d.times(x, y), z) == pytest.approx(d.times(x, d.times(y, z)))


@given(x=finite_floats, y=finite_floats, z=finite_floats)
def test_max_plus_axioms(x, y, z):
    d = MAX_PLUS
    assert d.plus(x, y) == max(x, y)
    assert d.times(d.plus(x, y), z) == pytest.approx(
        d.plus(d.times(x, z), d.times(y, z))
    )


@given(x=positive_floats, y=positive_floats, z=positive_floats)
def test_max_times_axioms(x, y, z):
    d = MAX_TIMES
    assert d.plus(x, y) == max(x, y)
    assert d.times(d.plus(x, y), z) == pytest.approx(
        d.plus(d.times(x, z), d.times(y, z))
    )


@given(x=st.booleans(), y=st.booleans(), z=st.booleans())
def test_boolean_axioms(x, y, z):
    d = BOOLEAN
    assert d.plus(x, y) == (x or y), "selective plus is disjunction"
    assert d.times(x, y) == (x and y)
    assert d.times(d.plus(x, y), z) == d.plus(d.times(x, z), d.times(y, z))


def test_boolean_inverted_order():
    # Section 6.4: the order is inverted (1 <= 0) so that satisfied
    # witnesses rank first and ranked enumeration subsumes evaluation.
    assert BOOLEAN.key(True) < BOOLEAN.key(False)
    assert BOOLEAN.plus(True, False) is True


class TestInverses:
    def test_tropical_divide(self):
        assert TROPICAL.divide(7.0, 3.0) == 4.0
        assert TROPICAL.has_inverse

    def test_max_plus_divide(self):
        assert MAX_PLUS.divide(7.0, 3.0) == 4.0

    def test_max_times_has_no_inverse(self):
        assert not MAX_TIMES.has_inverse
        with pytest.raises(NotImplementedError):
            MAX_TIMES.divide(4.0, 2.0)

    def test_boolean_has_no_inverse(self):
        assert not BOOLEAN.has_inverse


class TestLexicographic:
    def test_dimensions_validation(self):
        with pytest.raises(ValueError):
            LexicographicDioid(0)

    def test_times_is_vector_addition(self):
        d = LexicographicDioid(3)
        assert d.times((1, 2, 3), (10, 20, 30)) == (11, 22, 33)
        assert d.times((1, 2, 3), d.one) == (1, 2, 3)

    def test_order_is_lexicographic(self):
        d = LexicographicDioid(2)
        assert d.plus((1, 99), (2, 0)) == (1, 99)
        assert d.plus((1, 5), (1, 3)) == (1, 3)

    def test_unit_vector(self):
        d = LexicographicDioid(3)
        assert d.unit_vector(1, 7.0) == (0.0, 7.0, 0.0)

    def test_divide(self):
        d = LexicographicDioid(2)
        assert d.divide((5, 7), (2, 3)) == (3, 4)

    @given(
        a=st.tuples(finite_floats, finite_floats),
        b=st.tuples(finite_floats, finite_floats),
    )
    def test_selectivity(self, a, b):
        d = LexicographicDioid(2)
        assert d.plus(a, b) in (a, b)


class TestTieBreaking:
    def test_lift_and_key(self):
        tie = TieBreakingDioid(TROPICAL, 3)
        v = tie.lift(5.0, {0: "a", 2: "b"})
        assert v == (5.0, (("a",), (), ("b",)))
        assert tie.key(v) == (5.0, (("a",), (), ("b",)))
        assert tie.base_value(v) == 5.0

    def test_times_merges_bindings(self):
        tie = TieBreakingDioid(TROPICAL, 3)
        a = tie.lift(1.0, {0: 10})
        b = tie.lift(2.0, {1: 20})
        combined = tie.times(a, b)
        assert combined == (3.0, ((10,), (20,), ()))

    def test_ties_broken_by_bindings(self):
        tie = TieBreakingDioid(TROPICAL, 2)
        a = tie.lift(1.0, {0: 1, 1: 2})
        b = tie.lift(1.0, {0: 1, 1: 1})
        assert tie.plus(a, b) == b, "equal weights break ties lexicographically"

    def test_identical_outputs_get_identical_keys(self):
        tie = TieBreakingDioid(TROPICAL, 2)
        # Two trees composing the same full assignment in different
        # orders must produce the same key (Section 6.3 adjacency).
        left = tie.times(tie.lift(1.0, {0: "x"}), tie.lift(2.0, {1: "y"}))
        right = tie.times(tie.lift(2.0, {1: "y"}), tie.lift(1.0, {0: "x"}))
        assert tie.key(left) == tie.key(right)

    def test_one_and_zero(self):
        tie = TieBreakingDioid(TROPICAL, 2)
        v = tie.lift(3.0, {0: 1})
        assert tie.times(v, tie.one) == v
        assert tie.key(tie.zero)[0] == math.inf


class TestTimesAll:
    def test_times_all_folds(self):
        assert TROPICAL.times_all([1.0, 2.0, 3.0]) == 6.0
        assert TROPICAL.times_all([]) == 0.0
        assert MAX_TIMES.times_all([2.0, 3.0]) == 6.0

    def test_is_zero(self):
        assert TROPICAL.is_zero(math.inf)
        assert not TROPICAL.is_zero(0.0)
        assert BOOLEAN.is_zero(False)

    def test_leq(self):
        assert TROPICAL.leq(1.0, 2.0)
        assert MAX_PLUS.leq(2.0, 1.0), "max-plus prefers larger weights"
