"""Constants-as-selections preprocessing and theta-join tests."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.dp.theta import band_predicate, build_theta_path, comparison_predicate
from repro.anyk.base import make_enumerator
from repro.enumeration.api import ranked_enumerate
from repro.query.parser import parse_query
from repro.query.selections import (
    apply_selections,
    parse_query_with_constants,
    prepare,
)


class TestParseConstants:
    def test_numeric_constant(self):
        query, selections = parse_query_with_constants("Q(x) :- R(x, 5)")
        assert query.head == ("x",)
        assert len(selections) == 1
        assert selections[0].position == 1 and selections[0].value == 5

    def test_quoted_string_constant(self):
        _query, selections = parse_query_with_constants("Q(x) :- R(x, 'nyc')")
        assert selections[0].value == "nyc"

    def test_float_constant(self):
        _query, selections = parse_query_with_constants("Q(x) :- R(x, 2.5)")
        assert selections[0].value == 2.5

    def test_headless_query_excludes_constants_from_head(self):
        query, _ = parse_query_with_constants("R(x, 5), S(5, y)")
        assert query.head == ("x", "y")

    def test_no_constants_matches_plain_parser(self):
        query, selections = parse_query_with_constants("Q(x, y) :- R(x, y)")
        assert selections == []
        assert query == parse_query("Q(x, y) :- R(x, y)")

    def test_plain_parser_rejects_constants(self):
        with pytest.raises(ValueError, match="not a variable"):
            parse_query("Q(x) :- R(x, 5)")

    def test_garbage_token_rejected(self):
        with pytest.raises(ValueError, match="cannot parse atom argument"):
            parse_query_with_constants("Q(x) :- R(x, @!)")


class TestApplySelections:
    def setup_method(self):
        self.db = Database(
            [
                Relation(
                    "R", 2,
                    [(1, 5), (2, 5), (3, 9)],
                    [1.0, 2.0, 3.0],
                ),
                Relation("S", 2, [(5, 1), (9, 2)], [0.5, 0.25]),
            ]
        )

    def test_filters_relation(self):
        db2, query = prepare(self.db, "Q(x) :- R(x, 5)")
        results = [r.output_tuple for r in ranked_enumerate(db2, query)]
        assert results == [(1,), (2,)]

    def test_self_join_with_different_selections(self):
        db2, query = prepare(self.db, "R(x, 5), R(y, 9)")
        results = [
            r.output_tuple for r in ranked_enumerate(db2, query)
        ]
        assert set(results) == {(1, 3), (2, 3)}

    def test_join_through_constant(self):
        db2, query = prepare(self.db, "Q(x, y) :- R(x, 5), S(5, y)")
        results = {r.output_tuple for r in ranked_enumerate(db2, query)}
        assert results == {(1, 1), (2, 1)}

    def test_weights_preserved(self):
        db2, query = prepare(self.db, "Q(x) :- R(x, 9)")
        result = next(iter(ranked_enumerate(db2, query)))
        assert result.weight == 3.0

    def test_no_selections_identity(self):
        query = parse_query("Q(x, y) :- R(x, y)")
        db2, q2 = apply_selections(self.db, query, [])
        assert db2 is self.db and q2 is query


class TestThetaJoins:
    def setup_method(self):
        self.r = Relation("R", 2, [(1, 10), (2, 20), (3, 30)], [1.0, 2.0, 3.0])
        self.s = Relation("S", 2, [(15, 7), (25, 8), (40, 9)], [0.1, 0.2, 0.3])

    def brute(self, predicate):
        out = []
        for (rv, rw) in self.r.rows():
            for (sv, sw) in self.s.rows():
                if predicate(rv, sv):
                    out.append((round(rw + sw, 6), rv + sv))
        out.sort()
        return out

    @pytest.mark.parametrize("algorithm", ["take2", "lazy", "recursive", "batch"])
    def test_less_than_join(self, algorithm):
        predicate = comparison_predicate(1, "<", 0)
        tdp = build_theta_path([self.r, self.s], [predicate])
        expected = self.brute(predicate)
        got = sorted(
            (round(r.weight, 6), r.witness[0] + r.witness[1])
            for r in make_enumerator(tdp, algorithm)
        )
        assert got == expected

    def test_band_join(self):
        predicate = band_predicate(1, 0, 5.0)
        tdp = build_theta_path([self.r, self.s], [predicate])
        expected = self.brute(predicate)
        got = sorted(
            (round(r.weight, 6), r.witness[0] + r.witness[1])
            for r in make_enumerator(tdp, "take2")
        )
        assert got == expected

    def test_ranked_order(self):
        predicate = comparison_predicate(1, "!=", 0)
        tdp = build_theta_path([self.r, self.s], [predicate])
        weights = [r.weight for r in make_enumerator(tdp, "lazy")]
        assert weights == sorted(weights)

    def test_three_way_chain(self):
        t = Relation("T", 1, [(5,), (100,)], [10.0, 20.0])
        predicates = [
            comparison_predicate(1, "<", 0),
            comparison_predicate(1, ">", 0),
        ]
        tdp = build_theta_path([self.r, self.s, t], predicates)
        results = list(make_enumerator(tdp, "take2"))
        for result in results:
            rv, sv, tv = result.witness
            assert rv[1] < sv[0] and sv[1] > tv[0]
        assert len(results) == sum(
            1
            for rv in self.r.tuples
            for sv in self.s.tuples
            for tv in t.tuples
            if rv[1] < sv[0] and sv[1] > tv[0]
        )

    def test_empty_theta_join(self):
        predicate = comparison_predicate(0, ">", 0)  # r[0] > s[0]: never
        tdp = build_theta_path(
            [Relation("A", 1, [(1,)], [0.0]), Relation("B", 1, [(9,)], [0.0])],
            [predicate],
        )
        assert tdp.is_empty()
        assert list(make_enumerator(tdp, "take2")) == []

    def test_pruning_of_dead_states(self):
        predicate = comparison_predicate(1, "<", 0)
        # (3, 30) has no S partner with first column > 30 except 40: alive.
        # Add a row with no partner at all.
        r = Relation("R", 2, [(1, 10), (9, 99)], [1.0, 9.0])
        tdp = build_theta_path([r, self.s], [predicate])
        assert tdp.tuples[0] == [(1, 10)]

    def test_predicate_count_validated(self):
        with pytest.raises(ValueError, match="one predicate per adjacent"):
            build_theta_path([self.r, self.s], [])

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown comparison operator"):
            comparison_predicate(0, "<>", 1)

    def test_assignment_uses_stage_variables(self):
        predicate = band_predicate(1, 0, 100.0)
        tdp = build_theta_path([self.r, self.s], [predicate])
        result = next(iter(make_enumerator(tdp, "take2")))
        assert set(result.assignment) == {"s0_c0", "s0_c1", "s1_c0", "s1_c1"}
