"""Engine/plan-layer tests: equivalence vs. the legacy entry point,
plan-cache hit/miss behaviour, and invalidation after database mutation."""

import pytest

from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.index import IndexCache
from repro.data.relation import Relation
from repro.engine import (
    ACYCLIC_TDP,
    ALL_WEIGHT_PROJECTION,
    FREE_CONNEX_MINWEIGHT,
    GENERIC_DECOMPOSITION,
    SIMPLE_CYCLE_UNION,
    Engine,
    bind,
    plan,
)
from repro.enumeration.api import ranked_enumerate
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.parser import parse_query
from repro.ranking.dioid import MAX_PLUS


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


# -- planning layer (pure) -----------------------------------------------------


class TestPlanner:
    def test_acyclic_strategy(self):
        logical = plan(path_query(3))
        assert logical.strategy == ACYCLIC_TDP
        assert logical.join_tree is not None

    def test_simple_cycle_strategy(self):
        logical = plan(cycle_query(4))
        assert logical.strategy == SIMPLE_CYCLE_UNION
        assert len(logical.cycle_walk) == 4

    def test_generic_strategy(self):
        q = parse_query(
            "Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(a,c)"
        )
        assert plan(q).strategy == GENERIC_DECOMPOSITION

    def test_projection_wrapper(self):
        q = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        logical = plan(q)
        assert logical.strategy == ALL_WEIGHT_PROJECTION
        assert logical.inner is not None
        assert logical.inner.strategy == ACYCLIC_TDP
        assert logical.inner.query.is_full()

    def test_min_weight_strategy(self):
        q = parse_query("Q(x1) :- R1(x1, x2)")
        assert plan(q, projection="min_weight").strategy == FREE_CONNEX_MINWEIGHT

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError, match="projection"):
            plan(path_query(2), projection="nope")
        with pytest.raises(ValueError, match="algorithm"):
            plan(path_query(2), algorithm="nope")

    def test_explain_is_database_free(self):
        report = plan(cycle_query(4)).explain()
        assert "simple-cycle-union" in report
        assert "cycle walk" in report
        report = plan(path_query(3)).explain()
        assert "join tree" in report

    def test_physical_explain_has_stats(self):
        db = uniform_database(3, 20, domain_size=3, seed=1)
        physical = bind(plan(path_query(3)), db)
        report = physical.explain()
        assert "preprocessing took" in report
        assert "states" in report


# -- engine equivalence vs. legacy ranked_enumerate ----------------------------


class TestEquivalence:
    @pytest.mark.parametrize("algorithm", ["take2", "lazy", "recursive"])
    def test_acyclic(self, algorithm):
        db = uniform_database(3, 60, domain_size=6, seed=11)
        q = path_query(3)
        legacy = signature(ranked_enumerate(db, q, algorithm=algorithm))
        got = signature(Engine(db).prepare(q, algorithm=algorithm).iter())
        assert got == legacy

    def test_star(self):
        db = uniform_database(3, 50, domain_size=5, seed=12)
        q = star_query(3)
        assert signature(Engine(db).prepare(q).iter()) == signature(
            ranked_enumerate(db, q)
        )

    def test_simple_cycle(self):
        db = worst_case_cycle_database(4, 40, seed=13)
        q = cycle_query(4)
        legacy = signature(ranked_enumerate(db, q))
        got = signature(Engine(db).prepare(q).iter())
        assert got == legacy
        assert len(got) > 0

    def test_generic_decomposition(self):
        rels = [
            Relation(f"R{i}", 2, [(1, 2), (2, 1), (1, 1)], [0.5, 1.5, 2.5])
            for i in (1, 2, 3, 4, 5)
        ]
        db = Database(rels)
        q = parse_query(
            "Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(a,c)"
        )
        assert signature(Engine(db).prepare(q).iter()) == signature(
            ranked_enumerate(db, q)
        )

    def test_all_weight_projection(self):
        db = uniform_database(2, 30, domain_size=4, seed=14)
        q = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        assert signature(Engine(db).prepare(q).iter()) == signature(
            ranked_enumerate(db, q)
        )

    def test_min_weight_projection(self):
        db = uniform_database(2, 30, domain_size=4, seed=15)
        q = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        legacy = signature(
            ranked_enumerate(db, q, projection="min_weight")
        )
        got = signature(
            Engine(db).prepare(q, projection="min_weight").iter()
        )
        assert got == legacy

    def test_other_dioid(self):
        db = uniform_database(2, 25, domain_size=3, seed=16)
        q = path_query(2)
        legacy = signature(ranked_enumerate(db, q, dioid=MAX_PLUS))
        assert signature(
            Engine(db).prepare(q, dioid=MAX_PLUS).iter()
        ) == legacy

    def test_query_text_with_constants(self):
        db = uniform_database(2, 30, domain_size=4, seed=17)
        engine = Engine(db)
        prepared = engine.prepare("Q(x1) :- R1(x1, 2)")
        direct = [
            (round(r.weight, 6), r.output_tuple)
            for r in prepared.iter()
        ]
        brute = sorted(
            (round(w, 6), (t[0],))
            for t, w in zip(db["R1"].tuples, db["R1"].weights)
            if t[1] == 2
        )
        assert sorted(direct) == brute

    def test_top_matches_iter_prefix(self):
        db = uniform_database(3, 40, domain_size=5, seed=18)
        prepared = Engine(db).prepare(path_query(3))
        assert signature(prepared.top(7)) == signature(prepared.iter())[:7]

    def test_engine_execute_shortcut(self):
        db = uniform_database(2, 20, domain_size=3, seed=19)
        engine = Engine(db)
        top3 = engine.execute(path_query(2), k=3)
        assert len(top3) == 3
        assert signature(top3) == signature(
            ranked_enumerate(db, path_query(2))
        )[:3]


# -- cache behaviour -----------------------------------------------------------


class TestPlanCache:
    def test_hit_on_equal_query(self):
        db = uniform_database(2, 20, domain_size=3, seed=21)
        engine = Engine(db)
        p1 = engine.prepare(path_query(2))
        p2 = engine.prepare(path_query(2))  # equal but distinct object
        assert p1 is p2
        assert engine.stats.prepare_hits == 1
        assert engine.stats.prepare_misses == 1

    def test_miss_on_different_options(self):
        db = uniform_database(2, 20, domain_size=3, seed=22)
        engine = Engine(db)
        engine.prepare(path_query(2), algorithm="take2")
        engine.prepare(path_query(2), algorithm="lazy")
        engine.prepare(path_query(2), dioid=MAX_PLUS)
        assert engine.stats.prepare_misses == 3
        assert engine.cached_plans() == 3

    def test_binding_happens_once_per_version(self):
        db = uniform_database(2, 20, domain_size=3, seed=23)
        engine = Engine(db)
        prepared = engine.prepare(path_query(2))
        list(prepared.iter())
        list(prepared.iter())
        prepared.top(5)
        assert engine.stats.binds == 1
        assert prepared.preprocess_seconds is not None

    def test_lru_eviction(self):
        db = uniform_database(4, 10, domain_size=2, seed=24)
        engine = Engine(db, max_cached_plans=2)
        engine.prepare(path_query(2))
        engine.prepare(path_query(3))
        engine.prepare(path_query(4))
        assert engine.cached_plans() == 2
        assert engine.stats.evictions == 1

    def test_fingerprint_is_name_independent(self):
        q1 = path_query(3)
        q2 = parse_query(
            "Renamed(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        assert q1.fingerprint() == q2.fingerprint()
        assert q1 == q2
        q3 = star_query(3)
        assert q1.fingerprint() != q3.fingerprint()

    def test_physical_plan_shared_across_algorithms(self):
        db = uniform_database(3, 30, domain_size=4, seed=26)
        engine = Engine(db)
        take2 = engine.prepare(path_query(3), algorithm="take2")
        lazy = engine.prepare(path_query(3), algorithm="lazy")
        assert take2 is not lazy
        r1 = signature(take2.iter())
        r2 = signature(lazy.iter())
        # Only one preprocessing pass: the bound T-DP is shared.
        assert engine.stats.binds == 1
        assert take2.bind() is lazy.bind()
        assert r1 == r2

    def test_index_cache_reused_on_rebind(self):
        db = worst_case_cycle_database(4, 30, seed=25)
        engine = Engine(db)
        prepared = engine.prepare(cycle_query(4))
        list(prepared.iter())
        misses = engine.indexes.misses
        assert misses > 0
        assert engine.indexes.hits == 0
        # Mutate one relation: on rebind, only its degree index rebuilds;
        # the other cycle atoms' indexes are cache hits.
        name = next(iter(db.relations))
        db[name].add((0, 0), 1.0)
        list(prepared.iter())
        assert engine.stats.binds == 2
        assert engine.indexes.hits == 3
        assert engine.indexes.misses == misses + 1


# -- invalidation after mutation -----------------------------------------------


class TestInvalidation:
    def test_version_bumps(self):
        db = Database([Relation("R", 2, [(1, 2)], [1.0])])
        v0 = db.version
        db["R"].add((2, 3), 2.0)
        v1 = db.version
        assert v1 > v0
        db.add(Relation("S", 2, [(3, 4)], [0.5]))
        v2 = db.version
        assert v2 > v1
        db.remove("S")
        assert db.version > v2
        db.touch()
        assert db.version > v2 + 1

    def test_replacing_relation_is_monotone(self):
        db = Database([Relation("R", 2, [(1, 2)], [1.0])])
        db["R"].add((2, 3), 2.0)
        before = db.version
        db.add(Relation("R", 2, [(9, 9)], [9.0]))  # fresh, version 0
        assert db.version > before

    def test_relation_add_invalidates_plan(self):
        db = Database(
            [
                Relation("R", 2, [(1, 10)], [1.0]),
                Relation("S", 2, [(10, 7)], [2.0]),
            ]
        )
        engine = Engine(db)
        prepared = engine.prepare(parse_query("Q(a,b,c) :- R(a,b), S(b,c)"))
        assert len(list(prepared.iter())) == 1
        db["S"].add((10, 8), 0.5)
        results = signature(prepared.iter())
        assert len(results) == 2
        assert engine.stats.binds == 2
        assert results == signature(
            ranked_enumerate(db, parse_query("Q(a,b,c) :- R(a,b), S(b,c)"))
        )

    def test_database_add_invalidates_plan(self):
        db = uniform_database(2, 15, domain_size=3, seed=31)
        engine = Engine(db)
        prepared = engine.prepare(path_query(2))
        baseline = signature(prepared.iter())
        replacement = Relation("R1", 2, [(1, 1)], [0.0])
        db.add(replacement)
        fresh = signature(prepared.iter())
        assert fresh != baseline
        assert fresh == signature(ranked_enumerate(db, path_query(2)))

    def test_no_rebind_without_mutation(self):
        db = uniform_database(2, 15, domain_size=3, seed=32)
        engine = Engine(db)
        prepared = engine.prepare(path_query(2))
        first = prepared.bind()
        second = prepared.bind()
        assert first is second

    def test_explicit_invalidate(self):
        db = uniform_database(2, 15, domain_size=3, seed=33)
        engine = Engine(db)
        prepared = engine.prepare(path_query(2))
        prepared.bind()
        assert prepared.is_bound
        prepared.invalidate()
        assert not prepared.is_bound
        prepared.bind()
        assert engine.stats.binds == 2

    def test_aliased_rename_mutation_invalidates(self):
        # Database({"E": rel}) stores a rename() copy sharing storage
        # with rel; inserting through the *original* must still be seen.
        rel = Relation("edges", 2, [(1, 2)], [1.0])
        db = Database({"E": rel})
        engine = Engine(db)
        prepared = engine.prepare(parse_query("Q(x,y,z) :- E(x,y), E(y,z)"))
        assert len(list(prepared.iter())) == 0
        rel.add((2, 3), 0.5)  # mutation through the aliased original
        assert len(list(prepared.iter())) == 1
        assert engine.stats.binds == 2

    def test_same_cardinality_replacement_invalidates(self):
        db = Database([Relation("R", 2, [(1, 2)], [1.0])])
        engine = Engine(db)
        prepared = engine.prepare(parse_query("Q(x,y) :- R(x,y)"))
        assert signature(prepared.iter()) == [(1.0, (1, 2))]
        db.add(Relation("R", 2, [(7, 8)], [2.0]))  # same name, same len
        assert signature(prepared.iter()) == [(2.0, (7, 8))]

    def test_selection_refilters_on_mutation(self):
        db = Database(
            [Relation("R", 2, [(1, 2), (2, 2)], [1.0, 2.0])]
        )
        engine = Engine(db)
        prepared = engine.prepare("Q(x) :- R(x, 2)")
        assert len(list(prepared.iter())) == 2
        db["R"].add((3, 2), 0.1)
        assert len(list(prepared.iter())) == 3


# -- index cache ---------------------------------------------------------------


class TestIndexCache:
    def test_hit_and_stale_rebuild(self):
        rel = Relation("R", 2, [(1, 2), (1, 3), (2, 3)], [0.0, 0.0, 0.0])
        cache = IndexCache()
        index = cache.get(rel, (0,))
        assert cache.get(rel, (0,)) is index
        assert (cache.hits, cache.misses) == (1, 1)
        rel.add((5, 5), 0.0)
        rebuilt = cache.get(rel, (0,))
        assert rebuilt is not index
        assert rebuilt.lookup((5,)) == [3]
        assert cache.misses == 2

    def test_distinct_columns_distinct_indexes(self):
        rel = Relation("R", 2, [(1, 2)], [0.0])
        cache = IndexCache()
        assert cache.get(rel, (0,)) is not cache.get(rel, (1,))
        assert len(cache) == 2

    def test_same_name_replacement_not_served_stale(self):
        # A fresh relation with the same name, cardinality, and version
        # must not hit the old entry (object identity is in the stamp).
        cache = IndexCache()
        old = Relation("R", 2, [(1, 2)], [0.0])
        cache.get(old, (0,))
        new = Relation("R", 2, [(9, 9)], [0.0])
        index = cache.get(new, (0,))
        assert index.lookup((9,)) == [0]
        assert index.lookup((1,)) == []
        assert cache.misses == 2
