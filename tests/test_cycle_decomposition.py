"""Simple-cycle decomposition tests (Section 5.3.1, Fig 8)."""


import pytest

from repro.data.database import Database
from repro.data.generators import (
    nprr_hard_instance,
    uniform_database,
    worst_case_cycle_database,
)
from repro.data.relation import Relation
from repro.decomposition.cycle import (
    decompose_cycle,
    default_threshold,
    detect_simple_cycle,
)
from repro.enumeration.api import ranked_enumerate
from repro.joins.yannakakis import yannakakis
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.parser import parse_query
from tests.conftest import brute_force, weight_signature


def _reorder(rows, bag_query, original_query):
    """Align bag-query assignments with the original variable order."""
    positions = [
        bag_query.variables.index(v) for v in original_query.variables
    ]
    return [
        (weight, tuple(values[p] for p in positions)) for weight, values in rows
    ]


class TestDetection:
    def test_standard_cycles(self):
        for ell in (3, 4, 5, 6):
            walk = detect_simple_cycle(cycle_query(ell))
            assert walk is not None
            assert len(walk) == ell
            assert [a for a, _ in walk] == list(range(ell))

    def test_reversed_orientation_detected(self):
        # R2 written backwards: R1(x1,x2), R2(x3,x2), R3(x3,x1).
        q = parse_query("Q(x1,x2,x3) :- R1(x1,x2), R2(x3,x2), R3(x3,x1)")
        walk = detect_simple_cycle(q)
        assert walk is not None
        assert len(walk) == 3

    def test_non_cycles_rejected(self):
        assert detect_simple_cycle(path_query(4)) is None
        assert detect_simple_cycle(star_query(4)) is None
        q = parse_query("Q(a,b,c) :- R(a,b), S(b,c), T(a,c), U(a,b)")
        assert detect_simple_cycle(q) is None

    def test_ternary_atom_rejected(self):
        q = parse_query("Q(a,b,c) :- R(a,b,c), S(c,a)")
        assert detect_simple_cycle(q) is None

    def test_two_atoms_rejected(self):
        q = parse_query("Q(a,b) :- R(a,b), S(b,a)")
        assert detect_simple_cycle(q) is None

    def test_self_join_cycle_detected(self):
        q = cycle_query(4, relation="E")
        assert detect_simple_cycle(q) is not None


class TestThreshold:
    def test_matches_paper_for_even_lengths(self):
        # l=4: n^(1/2); l=6: n^(1/3) (the paper's n^(2/l)).
        assert default_threshold(100, 4) == 10
        assert default_threshold(1000, 6) == 10

    def test_odd_lengths_balanced(self):
        assert default_threshold(1000, 5) == 10  # n^(1/3)

    def test_minimum_two(self):
        assert default_threshold(1, 4) == 2


class TestPartitions:
    def test_member_count(self):
        db = uniform_database(4, 30, domain_size=4, seed=1)
        tasks = decompose_cycle(db, cycle_query(4))
        # At most l heavy members + 1 light member; empty ones dropped.
        assert 1 <= len(tasks) <= 5

    def test_bag_sizes_bounded(self):
        n = 60
        db = uniform_database(4, n, domain_size=6, seed=2)
        tasks = decompose_cycle(db, cycle_query(4))
        bound = 4 * n * default_threshold(n, 4)
        for task in tasks:
            for relation in task.database:
                assert len(relation) <= bound

    def test_members_are_acyclic_full_queries(self):
        db = uniform_database(5, 25, domain_size=4, seed=3)
        tasks = decompose_cycle(db, cycle_query(5))
        for task in tasks:
            assert task.query.is_acyclic()
            assert task.query.is_full()
            assert set(task.query.head) == {f"x{i}" for i in range(1, 6)}

    def test_outputs_disjoint_and_complete(self):
        db = uniform_database(4, 24, domain_size=3, seed=4)
        query = cycle_query(4)
        tasks = decompose_cycle(db, query)
        all_outputs = []
        for task in tasks:
            rows = yannakakis(task.database, task.query)
            all_outputs.extend(
                weight_signature(_reorder(rows, task.query, query))
            )
        expected = weight_signature(brute_force(db, query))
        assert sorted(all_outputs) == expected, "disjoint cover of the output"

    def test_lineage_covers_every_atom_once(self):
        db = uniform_database(4, 20, domain_size=3, seed=5)
        query = cycle_query(4)
        for task in decompose_cycle(db, query):
            pinned_atoms: list[int] = []
            for name in task.lineage:
                sample = task.lineage[name]
                if sample:
                    pinned_atoms.extend(a for a, _ in sample[0])
            assert sorted(pinned_atoms) == [0, 1, 2, 3]

    def test_not_a_cycle_raises(self):
        db = uniform_database(3, 10, domain_size=3, seed=6)
        with pytest.raises(ValueError, match="not a simple cycle"):
            decompose_cycle(db, path_query(3))

    def test_custom_threshold(self):
        db = worst_case_cycle_database(4, 16, seed=7)
        query = cycle_query(4)
        low = decompose_cycle(db, query, threshold=2)
        high = decompose_cycle(db, query, threshold=10**9)
        # With an absurd threshold nothing is heavy: only the light member.
        assert len(high) == 1
        assert high[0].label == "all-light"
        expected = weight_signature(brute_force(db, query))
        for tasks in (low, high):
            outputs = []
            for task in tasks:
                rows = yannakakis(task.database, task.query)
                outputs.extend(
                    weight_signature(_reorder(rows, task.query, query))
                )
            assert sorted(outputs) == expected


class TestEndToEnd:
    @pytest.mark.parametrize("ell,n,dom", [(3, 24, 4), (4, 20, 3), (5, 16, 3), (6, 12, 3)])
    def test_cycles_all_algorithms(self, ell, n, dom):
        db = uniform_database(ell, n, domain_size=dom, seed=ell * 7 + n)
        query = cycle_query(ell)
        expected = weight_signature(brute_force(db, query))
        for algorithm in ("take2", "lazy", "recursive", "batch"):
            got = [
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(db, query, algorithm=algorithm)
            ]
            weights = [w for w, _ in got]
            assert weights == sorted(weights), algorithm
            assert weight_signature(got) == expected, algorithm

    def test_self_join_cycle(self):
        import random

        rng = random.Random(8)
        edges = Relation("E", 2)
        for _ in range(20):
            edges.add((rng.randint(1, 5), rng.randint(1, 5)), rng.uniform(0, 10))
        db = Database([edges])
        query = cycle_query(4, relation="E")
        expected = weight_signature(brute_force(db, query))
        got = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="take2")
        )
        assert got == expected

    def test_nprr_instance_top_first(self):
        """On I1 the top 4-cycle must come out without full materialisation."""
        db = nprr_hard_instance(12, seed=9)
        query = cycle_query(4)
        expected = brute_force(db, query)
        first = next(iter(ranked_enumerate(db, query, algorithm="lazy")))
        assert first.weight == pytest.approx(expected[0][0])

    def test_empty_cycle_output(self):
        db = Database(
            [
                Relation("R1", 2, [(1, 2)], [1.0]),
                Relation("R2", 2, [(2, 3)], [1.0]),
                Relation("R3", 2, [(3, 4)], [1.0]),
                Relation("R4", 2, [(4, 99)], [1.0]),  # never closes
            ]
        )
        assert list(ranked_enumerate(db, cycle_query(4))) == []

    def test_weights_match_witnesses(self):
        db = uniform_database(4, 16, domain_size=3, seed=10)
        query = cycle_query(4)
        for r in ranked_enumerate(db, query, algorithm="take2"):
            total = sum(
                db[a.relation_name].weights[tid]
                for a, tid in zip(query.atoms, r.witness_ids)
            )
            assert total == pytest.approx(r.weight)
