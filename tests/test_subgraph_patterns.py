"""Tests for injective graph-pattern matching (subgraph isomorphism)."""

import itertools

import pytest

from repro.data.relation import Relation
from repro.homomorphism.patterns import (
    best_subgraph_match,
    ranked_subgraph_matches,
)

EDGES = [(1, 2), (2, 3), (3, 1), (2, 2), (3, 4), (4, 1)]
WEIGHTS = [1.0, 2.0, 3.0, 0.1, 4.0, 5.0]
TRIANGLE = [("a", "b"), ("b", "c"), ("c", "a")]


def brute_injective(pattern, edges, weights):
    vertices = sorted({v for e in pattern for v in e})
    weight_of = dict(zip(edges, weights))
    nodes = sorted({v for e in edges for v in e})
    out = []
    for image in itertools.permutations(nodes, len(vertices)):
        mapping = dict(zip(vertices, image))
        cost = 0.0
        ok = True
        for src, dst in pattern:
            edge = (mapping[src], mapping[dst])
            if edge not in weight_of:
                ok = False
                break
            cost += weight_of[edge]
        if ok:
            out.append((round(cost, 6), tuple(mapping[v] for v in vertices)))
    out.sort()
    return out


class TestInjectiveMatching:
    def test_triangle_matches_oracle(self):
        expected = brute_injective(TRIANGLE, EDGES, WEIGHTS)
        got = [
            (round(cost, 6), (m["a"], m["b"], m["c"]))
            for cost, m in ranked_subgraph_matches(TRIANGLE, EDGES, WEIGHTS)
        ]
        assert sorted(got) == expected
        assert [c for c, _ in got] == sorted(c for c, _ in got)

    def test_loop_filtered_when_injective(self):
        # The homomorphism folding onto loop (2,2) is not injective.
        got = list(ranked_subgraph_matches(TRIANGLE, EDGES, WEIGHTS))
        assert all(
            len({m["a"], m["b"], m["c"]}) == 3 for _cost, m in got
        )

    def test_non_injective_mode_keeps_foldings(self):
        non_injective = list(
            ranked_subgraph_matches(TRIANGLE, EDGES, WEIGHTS, injective=False)
        )
        injective = list(ranked_subgraph_matches(TRIANGLE, EDGES, WEIGHTS))
        assert len(non_injective) > len(injective)
        assert non_injective[0][0] == pytest.approx(0.3)  # all on the loop

    def test_relation_input(self):
        graph = Relation("G", 2, list(EDGES), list(WEIGHTS))
        via_relation = list(ranked_subgraph_matches(TRIANGLE, graph))
        via_list = list(ranked_subgraph_matches(TRIANGLE, EDGES, WEIGHTS))
        assert [
            (round(c, 6), tuple(sorted(m.items()))) for c, m in via_relation
        ] == [(round(c, 6), tuple(sorted(m.items()))) for c, m in via_list]

    def test_non_binary_relation_rejected(self):
        graph = Relation("G", 3, [(1, 2, 3)], [0.0])
        with pytest.raises(ValueError, match="binary"):
            list(ranked_subgraph_matches(TRIANGLE, graph))


class TestBestMatch:
    def test_best_triangle(self):
        result = best_subgraph_match(TRIANGLE, EDGES, WEIGHTS)
        assert result is not None
        cost, mapping = result
        assert cost == pytest.approx(6.0)  # 1 + 2 + 3
        assert {mapping["a"], mapping["b"], mapping["c"]} == {1, 2, 3}

    def test_no_match(self):
        square = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        result = best_subgraph_match(square, [(1, 2), (2, 3)], [1.0, 1.0])
        assert result is None

    def test_acyclic_pattern(self):
        fork = [("r", "x"), ("r", "y")]
        cost, mapping = best_subgraph_match(fork, EDGES, WEIGHTS)
        assert mapping["x"] != mapping["y"]
        # Cheapest injective fork: node 3 -> {1 via (3,1)=3, 4 via (3,4)=4}.
        assert cost == pytest.approx(7.0)
