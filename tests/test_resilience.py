"""Chaos suite: deterministic fault injection against every recovery path.

Each class injects one failure mode through :mod:`repro.util.faults`
and asserts the stack recovers *and* that any produced ranked output is
bit-identical to a fault-free run — recovery that changes answers is
worse than an error.  The suite closes with a parity check: with no
faults configured, the resilience layer is invisible (no retries, no
counter movement).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import pytest

from repro.data.backend import SQLiteBackend
from repro.data.generators import uniform_database
from repro.dp.corebuf import CoreFile
from repro.engine import Engine
from repro.query.builders import path_query
from repro.serve.client import HttpServeClient, ServeClient, ServeClientError
from repro.serve.gateway import GatewayThread
from repro.serve.policy import AccessPolicy
from repro.serve.resilience import (
    COUNTERS,
    CircuitBreaker,
    Deadline,
    Retrier,
    transient_sqlite,
)
from repro.serve.server import ServeServer, ServerThread
from repro.serve.session import SessionManager
from repro.util import faults
from repro.util.faults import FaultInjected, FaultPlan

ALL_VARIANTS = [
    "take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort",
]
QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


def signature(results):
    return [
        (round(r.weight, 6), r.output_tuple, r.witness_ids) for r in results
    ]


@pytest.fixture(autouse=True)
def reset_counters():
    COUNTERS.reset()
    yield
    COUNTERS.reset()


@pytest.fixture
def db():
    return uniform_database(3, 30, domain_size=5, seed=11)


# -- the fault plan itself -----------------------------------------------------


class TestFaultPlan:
    def test_parse_full_rule(self):
        plan = FaultPlan.parse("sqlite.execute=raise:3:2:busy")
        (rule,) = plan._rules["sqlite.execute"]
        assert (rule.action, rule.after, rule.count, rule.param) == (
            "raise", 3, 2, "busy",
        )

    def test_window_semantics(self):
        plan = FaultPlan.parse("s=raise:2:2")
        plan.hit("s")  # hit 1: before the window
        for _ in range(2):  # hits 2-3: inside
            with pytest.raises(FaultInjected):
                plan.hit("s")
        plan.hit("s")  # hit 4: past the window
        assert plan.counters() == {"hits": {"s": 4}, "fired": {"s": 2}}

    def test_count_zero_fires_forever(self):
        plan = FaultPlan.parse("s=raise:1:0")
        for _ in range(5):
            with pytest.raises(FaultInjected):
                plan.hit("s")

    def test_exception_shapes(self):
        import sqlite3

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            FaultPlan.parse("s=raise:1:1:busy").hit("s")
        with pytest.raises(ConnectionResetError):
            FaultPlan.parse("s=raise:1:1:reset").hit("s")

    def test_corrupt_truncate_and_flip(self):
        data = bytes(range(64))
        truncated = FaultPlan.parse("s=corrupt:1:1:truncate").corrupt("s", data)
        assert truncated == data[:32]
        flipped = FaultPlan.parse("s=corrupt").corrupt("s", data)
        assert flipped != data and len(flipped) == len(data)

    def test_injected_context_restores(self):
        assert not faults.enabled()
        with faults.injected("s=raise"):
            assert faults.enabled()
        assert not faults.enabled()

    def test_exit_token_is_one_shot(self, tmp_path):
        token = tmp_path / "token"
        token.write_text("")
        plan = FaultPlan.parse(f"s=exit:1:0:{token}")
        assert plan._consume_token(str(token))
        assert not plan._consume_token(str(token))


# -- retrier -------------------------------------------------------------------


class TestRetrier:
    def test_retries_then_succeeds(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return 42

        retrier = Retrier(attempts=4, sleep=sleeps.append, label="t")
        assert retrier.call(flaky) == 42
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth
        assert COUNTERS.get("retries_t") == 2

    def test_exhaustion_reraises_last(self):
        retrier = Retrier(attempts=2, sleep=lambda _s: None)
        with pytest.raises(OSError, match="persistent"):
            retrier.call(lambda: (_ for _ in ()).throw(OSError("persistent")))

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def fail():
            calls["n"] += 1
            raise ValueError("no")

        retrier = Retrier(
            attempts=5,
            retryable=lambda exc: isinstance(exc, OSError),
            sleep=lambda _s: None,
        )
        with pytest.raises(ValueError):
            retrier.call(fail)
        assert calls["n"] == 1

    def test_transient_sqlite_predicate(self):
        import sqlite3

        assert transient_sqlite(sqlite3.OperationalError("database is locked"))
        assert transient_sqlite(sqlite3.OperationalError("database is busy"))
        assert not transient_sqlite(sqlite3.OperationalError("syntax error"))
        assert not transient_sqlite(OSError("locked"))


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_full_cycle_with_frozen_clock(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=10.0, clock=lambda: now["t"]
        )
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        now["t"] = 10.5
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: now["t"]
        )
        breaker.record_failure()
        now["t"] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


# -- transient sqlite failures -------------------------------------------------


class TestSqliteBusyStorm:
    def test_storm_is_absorbed_bit_identically(self, db, tmp_path):
        baseline = list(Engine(db).prepare(path_query(3)).iter())

        sqlite = SQLiteBackend(str(tmp_path / "storm.db"))
        for relation in db:
            sqlite.ingest(relation)
        engine = Engine(sqlite.database(), core_cache="off")
        # Three consecutive locked errors: under the backend's 4-attempt
        # retrier every statement still completes.
        with faults.injected("sqlite.execute=raise:2:3:busy"):
            results = list(engine.prepare(path_query(3)).iter())
        assert signature(results) == signature(baseline)
        assert COUNTERS.get("retries_sqlite") >= 1
        engine2 = Engine(sqlite.database(), core_cache="off")
        assert engine2.stats.retries == 0  # fresh engine, fresh mirror

    def test_persistent_lock_still_raises(self, db, tmp_path):
        import sqlite3

        sqlite = SQLiteBackend(str(tmp_path / "stuck.db"))
        for relation in db:
            sqlite.ingest(relation)
        engine = Engine(sqlite.database(), core_cache="off")
        with faults.injected("sqlite.execute=raise:1:0:busy"):
            with pytest.raises(sqlite3.OperationalError):
                list(engine.prepare(path_query(3)).iter())


# -- worker crash recovery -----------------------------------------------------


class TestWorkerCrashRecovery:
    def test_killed_worker_is_respawned_bit_identically(self, db, tmp_path):
        baseline = {
            algorithm: list(
                Engine(db).prepare(path_query(3), algorithm=algorithm).iter()
            )
            for algorithm in ALL_VARIANTS
        }
        token = tmp_path / "kill-once"
        token.write_text("")
        engine = Engine(db, core_cache="off")
        # The exit rule is fork-inherited by pool workers; the token file
        # is consumed atomically, so exactly one worker dies and the
        # respawned pool rebuilds the same fragments.
        with faults.injected(f"worker.scan=exit:1:0:{token}"):
            for algorithm in ALL_VARIANTS:
                results = list(
                    engine.prepare(
                        path_query(3),
                        algorithm=algorithm,
                        shards=2,
                        shard_parallel="process",
                    ).iter()
                )
                assert signature(results) == signature(baseline[algorithm]), (
                    f"{algorithm} diverged after worker crash recovery"
                )
        assert not token.exists()
        assert COUNTERS.get("worker_respawns") == 1
        assert engine.stats.worker_respawns == 1
        assert engine.stats.pool_downgrades == 0

    def test_repeated_crashes_degrade_to_fused(self, db):
        baseline = list(Engine(db).prepare(path_query(3)).iter())
        engine = Engine(db, core_cache="off")
        # No token file: every worker dies, both pool attempts fail, and
        # the build falls back to the fused in-process path.
        with faults.injected("worker.scan=exit:1:0"):
            prepared = engine.prepare(
                path_query(3), shards=2, shard_parallel="process"
            )
            results = list(prepared.iter())
        assert signature(results) == signature(baseline)
        assert COUNTERS.get("pool_downgrades") == 1
        assert engine.stats.pool_downgrades == 1
        assert "fell back to" in prepared.explain()


# -- core-file corruption and partial writes -----------------------------------


class TestCoreFileRecovery:
    def _warm_engine(self, db, path):
        engine = Engine(db, core_cache=str(path))
        results = list(engine.prepare(path_query(3)).iter())
        return engine, results

    def test_truncated_core_degrades_to_cold_build(self, db, tmp_path):
        core_path = tmp_path / "plans.core"
        _, baseline = self._warm_engine(db, core_path)
        assert core_path.exists()
        payload = core_path.read_bytes()
        core_path.write_bytes(payload[: len(payload) // 2])

        engine = Engine(db, core_cache=str(core_path))
        results = list(engine.prepare(path_query(3)).iter())
        assert signature(results) == signature(baseline)

    def test_corrupt_toc_is_a_graceful_miss(self, db, tmp_path):
        core_path = tmp_path / "plans.core"
        _, baseline = self._warm_engine(db, core_path)
        with faults.injected("core.read=corrupt:1:0"):
            engine = Engine(db, core_cache=str(core_path))
            results = list(engine.prepare(path_query(3)).iter())
        assert signature(results) == signature(baseline)

    def test_transient_read_error_is_retried(self, db, tmp_path):
        core_path = tmp_path / "plans.core"
        engine, baseline = self._warm_engine(db, core_path)
        with faults.injected("core.read=raise:1:1:oserror"):
            warm = Engine(db, core_cache=str(core_path))
            results = list(warm.prepare(path_query(3)).iter())
        assert signature(results) == signature(baseline)
        assert COUNTERS.get("retries_core_read") >= 1

    def test_kill_mid_write_leaves_no_partial_core(self, tmp_path):
        path = str(tmp_path / "mid.core")
        entries = {"k": ({"kind": "tdp"}, 1, b"x" * 1024)}
        CoreFile(path).write(entries)
        good = open(path, "rb").read()
        with faults.injected("core.write=raise"):
            with pytest.raises(FaultInjected):
                CoreFile(path).write(
                    {"k": ({"kind": "tdp"}, 2, b"y" * 4096)}
                )
        # The half-written bytes never reached the container, and the
        # tmp sibling was cleaned up on the way out.
        assert open(path, "rb").read() == good
        assert [
            name for name in os.listdir(tmp_path) if ".tmp." in name
        ] == []
        toc, mapped = CoreFile(path).read_toc_and_map()
        assert toc["k"]["db_version"] == 1
        mapped.close()

    def test_stale_tmp_from_dead_pid_is_swept(self, tmp_path):
        path = str(tmp_path / "swept.core")
        stale = f"{path}.tmp.999999999"
        open(stale, "wb").write(b"junk")
        CoreFile(path).write({"k": ({"kind": "tdp"}, 1, b"data")})
        assert not os.path.exists(stale)


# -- deadline propagation ------------------------------------------------------


class _TickClock:
    """A monotonic clock advancing a fixed step per reading."""

    def __init__(self, step: float):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class TestDeadlines:
    def test_partial_page_is_the_correct_prefix(self, db):
        engine = Engine(db)
        full = [
            r.output_tuple for r in engine.prepare(path_query(3)).top(500)
        ]
        manager = SessionManager(
            engine, slice_size=8, clock=_TickClock(0.001)
        )
        _, cursor = manager.open_cursor("a", QUERY)
        outcome = manager.fetch("a", cursor, 500, deadline_ms=25)
        served = len(outcome.results)
        assert outcome.deadline_exceeded
        assert 0 < served < 500
        assert [
            r.output_tuple for r in outcome.results
        ] == full[:served]
        assert manager.scheduler.deadline_stops == 1
        # The cursor resumes exactly where the deadline stopped it.
        rest = manager.fetch("a", cursor, 500 - served)
        assert not rest.deadline_exceeded
        assert [
            r.output_tuple for r in outcome.results + rest.results
        ] == full

    def test_expired_before_first_slice_serves_nothing(self, db):
        manager = SessionManager(
            Engine(db), slice_size=8, clock=_TickClock(1.0)
        )
        _, cursor = manager.open_cursor("a", QUERY)
        outcome = manager.fetch("a", cursor, 10, deadline_ms=500)
        assert outcome.deadline_exceeded
        assert outcome.results == []

    def test_prepare_deadline_is_the_cursor_default(self, db):
        clock = _TickClock(1.0)
        manager = SessionManager(Engine(db), slice_size=8, clock=clock)
        _, cursor = manager.open_cursor("a", QUERY, deadline_ms=500)
        outcome = manager.fetch("a", cursor, 10)
        assert outcome.deadline_exceeded
        # A generous per-fetch override beats the cursor default.
        outcome = manager.fetch("a", cursor, 10, deadline_ms=10_000_000)
        assert not outcome.deadline_exceeded
        assert len(outcome.results) == 10

    def test_deadline_deadline_objects(self):
        now = {"t": 0.0}
        deadline = Deadline.after_ms(100, clock=lambda: now["t"])
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.1)
        now["t"] = 0.2
        assert deadline.expired()
        assert deadline.remaining() == 0.0


class TestDeadlinesOverTheWire:
    def test_tcp_partial_page_flag(self, db):
        engine = Engine(db)
        with ServerThread(engine, slice_size=8) as address:
            with ServeClient(*address) as client:
                cursor = client.prepare("s", QUERY)["cursor"]
                # Sub-microsecond budget: expires before the first slice.
                page = client.fetch("s", cursor, 10, deadline_ms=0.001)
                assert page.deadline_exceeded
                assert page.served == 0
                page = client.fetch("s", cursor, 10)
                assert not page.deadline_exceeded
                assert page.served == 10

    def test_http_zero_progress_is_504(self, db):
        engine = Engine(db)
        with GatewayThread(engine, slice_size=8) as address:
            with HttpServeClient(*address) as client:
                cursor = client.prepare("s", QUERY)["cursor"]
                with pytest.raises(ServeClientError) as err:
                    client.fetch("s", cursor, 10, deadline_ms=0.001)
                assert err.value.code == "deadline_exceeded"
                # The cursor is untouched: the next fetch serves page 1.
                page = client.fetch("s", cursor, 10)
                assert page.position == 10

    def test_bad_deadline_is_rejected(self, db):
        with ServerThread(Engine(db), slice_size=8) as address:
            with ServeClient(*address) as client:
                cursor = client.prepare("s", QUERY)["cursor"]
                with pytest.raises(ServeClientError) as err:
                    client.fetch("s", cursor, 10, deadline_ms=-5)
                assert err.value.code == "bad_request"


# -- load shedding and the breaker at the edge ---------------------------------


class TestOverloadGate:
    def test_in_flight_cap_sheds_fetches_only(self):
        policy = AccessPolicy(max_in_flight=1)
        admitted, _ = policy.overload_acquire("fetch")
        assert admitted
        shed, retry = policy.overload_acquire("fetch")
        assert not shed and retry > 0
        assert policy.overload_acquire("stats") == (True, 0.0)
        policy.overload_release("fetch")
        admitted, _ = policy.overload_acquire("fetch")
        assert admitted
        assert policy.shed == 1

    def test_open_breaker_sheds_prepare_and_fetch(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=lambda: now["t"]
        )
        policy = AccessPolicy(breaker=breaker)
        breaker.record_failure()
        for op in ("prepare", "fetch"):
            admitted, retry = policy.overload_acquire(op)
            assert not admitted
            assert retry == pytest.approx(30.0)
        assert policy.overload_acquire("ping") == (True, 0.0)
        assert policy.snapshot()["breaker"]["open"] is True

    def test_gateway_breaker_trip_and_client_retry(self, db):
        engine = Engine(db)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05)
        policy = AccessPolicy(breaker=breaker)
        with GatewayThread(engine, slice_size=8, policy=policy) as address:
            with HttpServeClient(*address) as client:
                cursor = client.prepare("s", QUERY)["cursor"]
                # One injected internal failure trips the breaker ...
                with faults.injected("fetch.slice=raise"):
                    with pytest.raises(ServeClientError) as err:
                        client.fetch("s", cursor, 5)
                    assert err.value.code == "internal"
                # ... so the next fetch is shed with a Retry-After hint.
                with pytest.raises(ServeClientError) as err:
                    client.fetch("s", cursor, 5)
                assert err.value.code == "overloaded"
                assert err.value.retry_after is not None
                # A retrying client waits the hint out and then lands on
                # the half-open probe, which closes the breaker again.
                patient = HttpServeClient(*address, retries=4)
                page = patient.fetch("s", cursor, 5)
                assert page.served == 5
                assert breaker.state == CircuitBreaker.CLOSED
                metrics = client.metrics()
                assert metrics["policy"]["shed"] >= 1
                assert metrics["resilience"]["shed"] >= 1
                patient.close()


# -- graceful drain ------------------------------------------------------------


class TestGracefulDrain:
    def test_mid_fetch_client_gets_its_full_page(self, db):
        async def scenario():
            from repro.serve.client import AsyncServeClient

            server = ServeServer(
                Engine(db), port=0, slice_size=4, drain_s=5.0
            )
            host, port = await server.start()
            client = AsyncServeClient(host, port)
            cursor = (await client.prepare("s", QUERY))["cursor"]

            fetch_task = asyncio.ensure_future(
                client.fetch("s", cursor, 400)
            )
            await asyncio.sleep(0.05)  # let the fetch get in flight
            await server.stop()  # closes the listener, then drains
            page = await fetch_task
            await client.close()
            return page

        page = asyncio.run(scenario())
        assert page.served == 400

    def test_zero_drain_still_stops_cleanly(self, db):
        async def scenario():
            server = ServeServer(Engine(db), port=0, drain_s=0.0)
            await server.start()
            await server.stop()

        asyncio.run(scenario())

    def test_negative_drain_rejected(self, db):
        with pytest.raises(ValueError):
            ServeServer(Engine(db), drain_s=-1.0)


# -- parity: faults off must be a no-op ----------------------------------------


class TestZeroFaultParity:
    def test_no_rules_means_no_counting_and_no_retries(self, db):
        assert not faults.enabled()
        engine = Engine(db)
        results = list(engine.prepare(path_query(3)).iter())
        assert results  # the query ran
        assert faults.counters() == {"hits": {}, "fired": {}}
        assert COUNTERS.snapshot() == {}
        assert engine.stats.retries == 0
        assert engine.stats.worker_respawns == 0
        assert engine.stats.pool_downgrades == 0

    def test_wire_terminator_unchanged_without_deadline(self, db):
        with ServerThread(Engine(db), slice_size=8) as address:
            with ServeClient(*address) as client:
                cursor = client.prepare("s", QUERY)["cursor"]
                client._send(
                    {"op": "fetch", "session": "s", "cursor": cursor, "n": 1}
                )
                lines = [client._read(), client._read()]
                terminator = lines[-1]
                assert "deadline_exceeded" not in terminator
