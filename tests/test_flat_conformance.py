"""Differential conformance: compiled flat core vs. object-graph path.

The flat enumeration core (:mod:`repro.dp.flat` + :mod:`repro.anyk.flat`)
claims *bit-identical* ranked output to the object-graph enumerators —
same weights, same keys, same state vectors, same tie-breaking — for
every any-k variant, because every float operation it performs is the
exact ``key``-image of the corresponding ``times`` call and every heap
ordering decision is replicated.  This suite pins that claim:

* all 7 variants, flat (``flat=None`` auto) vs. forced object path
  (``flat=False``), on tropical and max-plus (both compile) and on the
  lexicographic dioid (no ``key_is_value`` — must transparently fall
  back to the object path and still agree);
* counting and counter-free compiled loop variants produce the same
  stream, and op-counts match the object path exactly;
* both storage backends (memory and SQLite) through the engine;
* a hypothesis sweep over random weighted databases.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk.base import make_enumerator
from repro.anyk.flat import FlatAnyKPart, FlatRecursive
from repro.data.backend import SQLiteBackend
from repro.data.database import Database
from repro.data.generators import uniform_database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp_for_query
from repro.dp.flat import CompiledTDP, compile_tdp
from repro.engine import Engine
from repro.query.builders import path_query, star_query
from repro.query.parser import parse_query
from repro.ranking.dioid import (
    MAX_PLUS,
    TROPICAL,
    LexicographicDioid,
    SelectiveDioid,
)
from repro.util.counters import OpCounter

ALL_VARIANTS = [
    "take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort",
]
FAST_DIOIDS = [TROPICAL, MAX_PLUS]


def signature(results):
    """Exact stream fingerprint: weight, key, and state vector."""
    return [(r.weight, r.key, r.states) for r in results]


def build(shape: str, size: int, n: int, dioid, seed: int = 7):
    db = uniform_database(size, n, domain_size=max(2, n // 5), seed=seed)
    query = path_query(size) if shape == "path" else star_query(size)
    return build_tdp_for_query(db, query, dioid=dioid)


class TestFlatBitIdentical:
    @pytest.mark.parametrize("algorithm", ALL_VARIANTS)
    @pytest.mark.parametrize("shape", ["path", "star"])
    def test_all_variants_tropical(self, algorithm, shape):
        tdp = build(shape, 4, 120, TROPICAL)
        reference = signature(make_enumerator(tdp, algorithm, flat=False))
        assert reference, "workload must not be empty"
        assert signature(make_enumerator(tdp, algorithm)) == reference

    @pytest.mark.parametrize("algorithm", ALL_VARIANTS)
    def test_all_variants_max_plus(self, algorithm):
        tdp = build("path", 3, 90, MAX_PLUS)
        reference = signature(make_enumerator(tdp, algorithm, flat=False))
        assert signature(make_enumerator(tdp, algorithm)) == reference

    @pytest.mark.parametrize("algorithm", ALL_VARIANTS)
    def test_counting_variant_matches_and_counts_agree(self, algorithm):
        tdp = build("star", 4, 80, TROPICAL)
        flat_counter, object_counter = OpCounter(), OpCounter()
        flat = signature(make_enumerator(tdp, algorithm, counter=flat_counter))
        reference = signature(
            make_enumerator(tdp, algorithm, counter=object_counter, flat=False)
        )
        assert flat == reference
        assert flat_counter.as_dict() == object_counter.as_dict()

    def test_interleaved_step_top_iter(self):
        tdp = build("path", 4, 60, TROPICAL)
        reference = signature(make_enumerator(tdp, "take2", flat=False))
        enum = make_enumerator(tdp, "take2")
        got = signature(enum.step(7)) + signature(enum.top(5))
        got += signature(enum)
        assert got == reference
        assert enum.exhausted


class TestGenericDioidFallback:
    """Non-``key_is_value`` dioids keep the object path, transparently."""

    def _lex_tdp(self, algorithm_seed: int = 0):
        dioid = LexicographicDioid(2)
        rng = random.Random(31 + algorithm_seed)
        rows_r = [((i, rng.randrange(6)), dioid.unit_vector(0, rng.random()))
                  for i in range(30)]
        rows_s = [((i % 6, rng.randrange(5)), dioid.unit_vector(1, rng.random()))
                  for i in range(30)]
        db = Database([
            Relation("R", 2, [v for v, _ in rows_r], [w for _, w in rows_r]),
            Relation("S", 2, [v for v, _ in rows_s], [w for _, w in rows_s]),
        ])
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        return build_tdp_for_query(db, query, dioid=dioid), dioid

    @pytest.mark.parametrize("algorithm", ALL_VARIANTS)
    def test_lexicographic_identical_through_fallback(self, algorithm):
        tdp, _dioid = self._lex_tdp()
        reference = signature(make_enumerator(tdp, algorithm, flat=False))
        assert reference
        # flat=None auto-falls back: identical stream, object enumerator.
        auto = make_enumerator(tdp, algorithm)
        assert not isinstance(auto, (FlatAnyKPart, FlatRecursive))
        assert signature(auto) == reference

    def test_compile_refuses_generic_dioid(self):
        tdp, _dioid = self._lex_tdp()
        assert compile_tdp(tdp) is None
        assert compile_tdp(tdp) is None  # memoized negative answer
        with pytest.raises(ValueError, match="key_is_value"):
            make_enumerator(tdp, "take2", flat=True)

    def test_flat_forced_on_supported_dioid(self):
        tdp = build("path", 3, 40, TROPICAL)
        enum = make_enumerator(tdp, "take2", flat=True)
        assert isinstance(enum, FlatAnyKPart)


class TestKeyIsValueContract:
    def test_tropical_key_roundtrip(self):
        assert TROPICAL.key_is_value
        assert TROPICAL.value_from_key(TROPICAL.key(3.5)) == 3.5

    def test_max_plus_key_roundtrip(self):
        assert MAX_PLUS.key_is_value
        assert MAX_PLUS.value_from_key(MAX_PLUS.key(3.5)) == 3.5
        assert MAX_PLUS.key(2.0) == -2.0

    def test_key_additivity(self):
        rng = random.Random(5)
        for dioid in FAST_DIOIDS:
            for _ in range(50):
                a, b = rng.random() * 10, rng.random() * 10
                assert dioid.key(dioid.times(a, b)) == dioid.key(a) + dioid.key(b)

    def test_generic_dioids_not_marked(self):
        assert not LexicographicDioid(2).key_is_value
        assert not SelectiveDioid.key_is_value


class TestCompiledStructure:
    def test_compile_memoized_and_shared(self):
        tdp = build("path", 3, 40, TROPICAL)
        compiled = compile_tdp(tdp)
        assert isinstance(compiled, CompiledTDP)
        assert compile_tdp(tdp) is compiled
        # Shared by enumerators of different algorithms.
        e1 = make_enumerator(tdp, "take2")
        e2 = make_enumerator(tdp, "recursive")
        assert e1.compiled is compiled and e2.compiled is compiled

    def test_layout_matches_tdp(self):
        tdp = build("star", 4, 50, TROPICAL)
        compiled = compile_tdp(tdp)
        assert compiled.num_stages == tdp.num_stages
        assert not compiled.is_chain  # star is not a chain
        stats = compiled.stats()
        assert stats["states"] == tdp.num_states()
        total_entries = sum(
            len(compiled.pairs(uid)) for uid in range(compiled.num_connectors)
        )
        assert stats["entries"] == total_entries
        # CSR slices reproduce the ChoiceSet entry pairs, in order.
        conn = tdp.connector_for(0, None)
        assert compiled.pairs(conn.uid) == [
            (entry[0], entry[1]) for entry in conn.entries
        ]

    def test_chain_flag_on_paths(self):
        tdp = build("path", 4, 30, TROPICAL)
        assert compile_tdp(tdp).is_chain

    def test_empty_output(self):
        db = Database([
            Relation("R", 2, [(1, 2)], [1.0]),
            Relation("S", 2, [(99, 100)], [1.0]),
        ])
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        tdp = build_tdp_for_query(db, query)
        for algorithm in ALL_VARIANTS:
            assert list(make_enumerator(tdp, algorithm)) == []

    def test_shared_static_structures_are_not_mutated(self):
        tdp = build("path", 3, 60, TROPICAL)
        compiled = compile_tdp(tdp)
        first = signature(make_enumerator(tdp, "take2"))
        uid = compiled.root_uid[0]
        heap_snapshot = list(compiled.take2_heap(uid))
        sorted_snapshot = list(compiled.sorted_pairs(uid))
        signature(make_enumerator(tdp, "take2"))
        signature(make_enumerator(tdp, "eager"))
        assert compiled.take2_heap(uid) == heap_snapshot
        assert compiled.sorted_pairs(uid) == sorted_snapshot
        assert signature(make_enumerator(tdp, "take2")) == first


class TestEngineBackends:
    """Flat vs. object parity holds through the engine on both backends."""

    QUERY = "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"

    def _database(self):
        return uniform_database(2, 80, domain_size=12, seed=19)

    def _engine_prefix(self, database, algorithm, k=60):
        engine = Engine(database)
        prepared = engine.prepare(self.QUERY, algorithm=algorithm)
        return [
            (r.weight, r.output_tuple)
            for r in itertools.islice(prepared.iter(), k)
        ]

    @pytest.mark.parametrize("algorithm", ["take2", "recursive", "lazy"])
    def test_memory_vs_sqlite_on_flat_core(self, algorithm, tmp_path):
        memory = self._database()
        backend = SQLiteBackend(str(tmp_path / f"{algorithm}.db"))
        for relation in memory:
            backend.ingest(relation)
        reference = self._engine_prefix(memory, algorithm)
        assert reference
        assert self._engine_prefix(backend.database(), algorithm) == reference

    def test_engine_compiles_at_bind(self):
        engine = Engine(self._database())
        prepared = engine.prepare(self.QUERY, algorithm="take2")
        physical = prepared.bind()
        assert physical.compiled is not None
        assert physical.tdp._compiled is physical.compiled
        # Sibling algorithm shares the same physical plan and core.
        sibling = engine.prepare(self.QUERY, algorithm="recursive")
        assert sibling.bind().compiled is physical.compiled

    def test_prefix_stream_uses_counting_variant(self):
        engine = Engine(self._database())
        prepared = engine.prepare(self.QUERY, algorithm="take2")
        counter = OpCounter()
        top = prepared.top(10, counter=counter)
        assert len(top) == 10
        assert counter.pq_pop > 0  # compiled counting loop attributed ops


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    algorithm=st.sampled_from(["take2", "recursive", "lazy", "eager", "all"]),
)
def test_hypothesis_flat_matches_object(seed, algorithm):
    rng = random.Random(seed)
    size = rng.choice([2, 3])
    n = rng.randint(10, 40)
    db = uniform_database(
        size, n, domain_size=rng.randint(2, 8), seed=seed
    )
    query = path_query(size) if rng.random() < 0.5 else star_query(size)
    tdp = build_tdp_for_query(db, query, dioid=rng.choice(FAST_DIOIDS))
    assert signature(make_enumerator(tdp, algorithm)) == signature(
        make_enumerator(tdp, algorithm, flat=False)
    )
