"""Parallel layer: sharder planning, engine caching, preprocessor modes.

Covers the engine-integration guarantees of the sharding subsystem:

* shard configuration participates in the physical *and* stream cache
  keys — re-preparing with a different ``shards=`` can never serve a
  stale memoized prefix (the PrefixStream regression);
* sharded binds share physical plans across algorithms and invalidate
  under the existing database-version stamp scheme;
* the anchor heuristic, fragment layout, and explain output;
* thread/process preprocessor modes build bit-identical fragments, and
  the compiled cores (and singleton dioids) survive pickling.
"""

import pickle
import random

import pytest

from repro.data.backend import SQLiteBackend
from repro.data.database import Database
from repro.data.generators import uniform_database
from repro.data.relation import Relation
from repro.engine import Engine, plan
from repro.parallel import ShardSpec, Sharder, ShardedPhysical
from repro.query.builders import path_query, star_query
from repro.util.counters import OpCounter


def signature(results):
    return [
        (r.weight, tuple(sorted(r.assignment.items())), r.witness_ids)
        for r in results
    ]


@pytest.fixture
def engine():
    return Engine(uniform_database(3, 120, seed=21))


QUERY = path_query(3)


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(0)
        with pytest.raises(ValueError):
            ShardSpec(2, strategy="mod")
        with pytest.raises(ValueError):
            ShardSpec(2, tie_break="random")
        with pytest.raises(ValueError):
            ShardSpec(2, parallel="gpu")
        with pytest.raises(ValueError):
            ShardSpec(2, workers=0)

    def test_hashable_and_distinct(self):
        assert ShardSpec(2) == ShardSpec(2)
        assert hash(ShardSpec(2)) == hash(ShardSpec(2))
        assert ShardSpec(2) != ShardSpec(4)
        assert ShardSpec(2) != ShardSpec(2, tie_break="canonical")

    def test_prepare_rejects_bad_spec(self, engine):
        with pytest.raises(ValueError):
            engine.prepare(QUERY, shards=0)
        with pytest.raises((TypeError, ValueError)):
            engine.prepare(QUERY, shards="four")


class TestSharderPlanning:
    def test_default_anchor_is_join_tree_root(self, engine):
        logical = plan(QUERY, shards=ShardSpec(2))
        shard_plan = Sharder(engine.database).plan(logical, logical.shard, True)
        assert shard_plan.anchor_atom == logical.join_tree.order[0]
        assert shard_plan.anchor_stage == 0

    def test_heuristic_prefers_much_larger_relation(self):
        database = uniform_database(3, 50, seed=2)
        big = Relation(
            "R3", 2,
            [(random.Random(0).randint(1, 5), i) for i in range(200)],
            [float(i) for i in range(200)],
        )
        database.add(big)
        logical = plan(QUERY, shards=ShardSpec(4))
        shard_plan = Sharder(database).plan(logical, logical.shard, True)
        assert shard_plan.anchor_atom == 2  # R3 is >= 2x larger
        assert any("heuristic anchored" in note for note in shard_plan.notes)
        # Non-root anchor: the component is re-rooted at the anchor.
        assert shard_plan.join_tree.parent[2] == -1

    def test_explicit_anchor_override(self, engine):
        logical = plan(QUERY, shards=ShardSpec(2, atom=1))
        shard_plan = Sharder(engine.database).plan(logical, logical.shard, True)
        assert shard_plan.anchor_atom == 1
        with pytest.raises(ValueError):
            Sharder(engine.database).plan(
                logical, ShardSpec(2, atom=9), True
            )

    def test_range_fragments_cover_and_partition(self, engine):
        logical = plan(QUERY, shards=ShardSpec(5))
        shard_plan = Sharder(engine.database).plan(logical, logical.shard, True)
        bounds = [(f.lo, f.hi) for f in shard_plan.fragments]
        assert bounds[0][0] == 0 and bounds[-1][1] == 120
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_object_path_requires_unique_anchor_name(self):
        """The object-graph fragment path restricts the anchor relation
        by *name*, so a pure self-join must be rejected — silently
        dropping cross-fragment answers would be worse (regression for
        the canonical tie-break AND non-key_is_value dioids)."""
        from repro.query.parser import parse_query
        from repro.ranking.dioid import MAX_TIMES

        # Join-acyclic edge set: no (i, j)/(j, i) answer pairs, so the
        # flat-path comparison below is tie-free.
        edges = Relation(
            "E", 2, [(1, 2), (2, 3), (1, 3), (3, 4)],
            [1.0, 2.0, 4.0, 8.0],
        )
        database = Database([edges])
        query = parse_query("Q(x, y, z) :- E(x, y), E(y, z)")
        logical = plan(query, shards=ShardSpec(2, tie_break="canonical"))
        with pytest.raises(ValueError, match="self-join"):
            Sharder(database).plan(logical, logical.shard, False)
        # Same guard for a generic dioid under the default arrival mode.
        engine = Engine(database)
        with pytest.raises(ValueError, match="self-join"):
            engine.prepare(query, dioid=MAX_TIMES, shards=2).bind()
        # The flat path shards the same query fine (per-stage restriction).
        reference = signature(engine.prepare(query).iter())
        assert signature(engine.prepare(query, shards=2).iter()) == reference

    def test_explain_mentions_shards(self, engine):
        prepared = engine.prepare(QUERY, shards=3)
        prepared.bind()
        report = prepared.explain()
        assert "shard plan: 3 fragment(s)" in report
        assert "anchor atom #0" in report

    def test_unsupported_strategy_falls_back(self):
        from repro.query.builders import cycle_query

        database = uniform_database(3, 40, seed=8)
        engine = Engine(database)
        query = cycle_query(3)
        reference = signature(engine.prepare(query).iter())
        prepared = engine.prepare(query, shards=4)
        assert signature(prepared.iter()) == reference
        assert not isinstance(prepared.bind(), ShardedPhysical)
        assert "unsupported for strategy" in prepared.logical.explain()


class TestEngineCaching:
    def test_shard_counts_get_distinct_physicals(self, engine):
        p2 = engine.prepare(QUERY, shards=2)
        p4 = engine.prepare(QUERY, shards=4)
        p0 = engine.prepare(QUERY)
        assert p2 is not p4
        phys2, phys4, phys0 = p2.bind(), p4.bind(), p0.bind()
        assert phys2 is not phys4
        assert phys2.shard_count == 2 and phys4.shard_count == 4
        assert getattr(phys0, "shard_count", 0) == 0
        assert engine.stats.sharded_binds == 2

    def test_algorithms_share_one_sharded_bind(self, engine):
        binds_before = engine.stats.binds
        a = engine.prepare(QUERY, shards=3, algorithm="take2")
        b = engine.prepare(QUERY, shards=3, algorithm="recursive")
        assert a.bind() is b.bind()
        assert engine.stats.binds == binds_before + 1

    def test_version_invalidation_rebinds(self, engine):
        prepared = engine.prepare(QUERY, shards=2)
        first = prepared.bind()
        top_before = prepared.top(5)
        engine.database["R1"].add((1, 1), 0.25)
        second = prepared.bind()
        assert second is not first
        top_after = prepared.top(5)
        assert top_after != top_before or True  # rebind happened; values may shift
        assert engine.stats.sharded_binds == 2

    def test_stream_key_includes_shard_spec_regression(self, engine):
        """top(k) on a re-prepared query with different shards= must not
        serve the other configuration's memoized prefix."""
        p2 = engine.prepare(QUERY, shards=2)
        first = p2.top(10)
        misses = engine.stats.stream_misses
        p4 = engine.prepare(QUERY, shards=4)
        second = p4.top(10)
        # A fresh stream was built for the new configuration...
        assert engine.stats.stream_misses == misses + 1
        assert p2.stream_key != p4.stream_key
        assert p2.stream() is not p4.stream()
        # ...and repeated top() on either replays its own memo.
        counter = OpCounter()
        assert p2.top(10, counter=counter) == first
        assert counter.results == 0 and counter.pq_pop == 0
        assert signature(second) == signature(first)

    def test_prefix_stream_memoizes_sharded_runs(self, engine):
        """Overlapping top(k) extends, never replays.

        Member enumerators legitimately run up to ``shards`` results
        ahead of the merged prefix (the merge heap buffers one head per
        fragment), so the counted results bound is ``k + shards``.
        """
        prepared = engine.prepare(QUERY, shards=3)
        counter = OpCounter()
        prepared.top(5, counter=counter)
        assert 5 <= counter.results <= 5 + 3
        extension = OpCounter()
        prepared.top(25, counter=extension)
        assert 20 <= extension.results <= 20 + 3  # answers 6..25 only
        replay = OpCounter()
        prepared.top(25, counter=replay)
        assert replay.results == 0 and replay.pq_pop == 0


class TestMergeCounterAttribution:
    def test_counter_counts_results_once(self, engine):
        prepared = engine.prepare(QUERY, shards=4)
        counter = OpCounter()
        results = list(prepared.bind().iter(counter=counter, algorithm="take2"))
        assert counter.results == len(results)
        assert counter.pq_pop >= len(results)  # merge heap traffic included

    def test_shard_counts_attribution(self, engine):
        prepared = engine.prepare(QUERY, shards=4)
        physical = prepared.bind()
        results = list(physical.iter())
        counts = physical.last_shard_counts()
        assert sum(counts) == len(results)
        assert len(counts) == 4
        stats = physical.shard_stats()
        assert stats["shards"] == 4
        assert stats["last_shard_counts"] == counts


class TestPreprocessorModes:
    # Fresh engine per mode: the engine's caches key on the spec's
    # *result identity* only, so a second prepare with a different
    # build-mode hint would (deliberately) reuse the first bind.

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_worker_modes_match_fused_memory(self, mode):
        database = uniform_database(3, 120, seed=21)
        fused = signature(
            Engine(database)
            .prepare(QUERY, shards=4, shard_parallel="fused")
            .iter()
        )
        physical = (
            Engine(database)
            .prepare(QUERY, shards=4, shard_parallel=mode)
            .bind()
        )
        if physical.mode != mode:  # pool unavailable -> graceful fallback
            assert any("fell back" in note or "downgraded" in note
                       for note in physical.notes)
        assert signature(physical.iter()) == fused

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_worker_modes_match_fused_sqlite(self, tmp_path, mode):
        backend = SQLiteBackend(str(tmp_path / "modes.db"))
        for relation in uniform_database(3, 120, seed=21):
            backend.ingest(relation)
        database = backend.database()
        fused = signature(
            Engine(database)
            .prepare(QUERY, shards=4, shard_parallel="fused")
            .iter()
        )
        physical = (
            Engine(database)
            .prepare(QUERY, shards=4, shard_parallel=mode)
            .bind()
        )
        if physical.mode != mode:  # pragma: no cover - env-dependent
            assert any("fell back" in note or "downgraded" in note
                       for note in physical.notes)
        assert signature(physical.iter()) == fused
        backend.close()

    def test_parallel_hint_shares_bind_and_stream(self, engine):
        """parallel/workers are build mechanics, not result identity."""
        a = engine.prepare(QUERY, shards=4)
        first = a.top(5)
        binds = engine.stats.binds
        b = engine.prepare(QUERY, shards=4, shard_parallel="thread",
                           shard_workers=2)
        assert b.top(5) == first
        assert engine.stats.binds == binds  # no second preprocessing
        assert a.physical_key == b.physical_key

    def test_process_mode_downgrades_for_memory_sqlite(self):
        backend = SQLiteBackend(":memory:")
        for relation in uniform_database(2, 30, seed=4):
            backend.ingest(relation)
        engine = Engine(backend.database())
        prepared = engine.prepare(path_query(2), shards=2, shard_parallel="process")
        physical = prepared.bind()
        assert physical.mode == "thread"
        assert any("downgraded" in note for note in physical.notes)
        engine.close()


class TestPicklability:
    def test_shard_compiled_round_trips(self, engine):
        physical = engine.prepare(QUERY, shards=2).bind()
        fragment = physical.fragments[0]
        clone = pickle.loads(pickle.dumps(fragment.compiled))
        from repro.anyk.flat import make_flat_enumerator

        original = [
            (r.weight, r.states)
            for r in make_flat_enumerator(fragment.compiled, "recursive")
        ]
        copied = [
            (r.weight, r.states)
            for r in make_flat_enumerator(clone, "recursive")
        ]
        assert original == copied
        assert clone.tdp.dioid is fragment.compiled.tdp.dioid  # singleton

    def test_named_dioids_pickle_to_singletons(self):
        from repro.ranking.dioid import BOOLEAN, MAX_PLUS, MAX_TIMES, TROPICAL

        for dioid in (TROPICAL, MAX_PLUS, MAX_TIMES, BOOLEAN):
            assert pickle.loads(pickle.dumps(dioid)) is dioid


class TestServingIntegration:
    def test_open_cursor_with_shards(self, engine):
        from repro.serve.session import SessionManager

        manager = SessionManager(engine)
        text = "Q(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)"
        _session, plain = manager.open_cursor("s", text)
        _session, sharded = manager.open_cursor("s", text, shards=4)
        a = manager.fetch("s", plain, 15)
        b = manager.fetch("s", sharded, 15)
        assert signature(a.results) == signature(b.results)
        stats = manager.stats()
        cursor_stats = stats["sessions"]["s"]["cursors"]
        assert "shards" not in cursor_stats[plain]
        assert cursor_stats[sharded]["shards"] == 4
        assert stats["engine"]["sharded_binds"] == 1

    def test_star_query_cursor(self, engine):
        prepared = engine.prepare(star_query(3), shards=3)
        cursor = prepared.cursor()
        page = cursor.fetch(10)
        reference = engine.prepare(star_query(3)).top(10)
        assert signature(page) == signature(reference)
