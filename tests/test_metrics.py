"""Tests for the typed metrics registry, profiler, and operator views.

Covers :mod:`repro.obs.metrics` (instruments, families, registry,
exposition rendering, promtool-style validation), the sampling
profiler, ``repro top`` / ``GET /debug`` rendering, and the migrated
subsystem counters (engine stats, core cache, sessions, policy).
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time

import pytest

from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.obs.metrics import (
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
    validate_exposition,
)
from repro.obs.profiler import SamplingProfiler, stage_of
from repro.obs.top import debug_html, render_top


# -- instruments ---------------------------------------------------------------


class TestCounter:
    def test_inc_and_int_protocol(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(3)
        assert int(counter) == 4
        assert counter == 4
        assert counter >= 1
        assert counter + 1 == 5

    def test_iadd_returns_same_instrument(self):
        counter = Counter("repro_test_total")
        alias = counter
        counter += 1
        assert counter is alias
        assert int(counter) == 1

    def test_negative_increment_rejected(self):
        counter = Counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_allows_monotone_mirrors(self):
        counter = Counter("repro_test_total")
        counter.set(10)
        assert int(counter) == 10

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("not a metric name")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_test_gauge")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert float(gauge) == 4.0

    def test_callback_evaluated_per_read(self):
        box = {"v": 1}
        gauge = Gauge("repro_test_gauge", fn=lambda: box["v"])
        assert float(gauge) == 1.0
        box["v"] = 7
        assert float(gauge) == 7.0

    def test_callback_failure_reads_zero(self):
        gauge = Gauge("repro_test_gauge", fn=lambda: 1 / 0)
        assert float(gauge) == 0.0


class TestHistogram:
    def test_buckets_cumulative_and_sum(self):
        hist = Histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        cumulative = dict(snap["buckets"])
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 3
        assert cumulative[10.0] == 4  # 50.0 only lands in +Inf

    def test_samples_shape(self):
        hist = Histogram("repro_test_seconds", buckets=(1.0,))
        hist.observe(0.5)
        names = [suffix for suffix, _labels, _v in hist.samples()]
        assert names == ["_bucket", "_bucket", "_sum", "_count"]
        le_values = [
            labels["le"] for suffix, labels, _v in hist.samples()
            if suffix == "_bucket"
        ]
        assert le_values == ["1", "+Inf"]

    def test_default_buckets_exponential(self):
        buckets = default_buckets()
        assert len(buckets) == 14
        assert buckets[0] == pytest.approx(0.001)
        for lo, hi in zip(buckets, buckets[1:]):
            assert hi == pytest.approx(lo * 2.0)

    def test_thread_safety_totals(self):
        hist = Histogram("repro_test_seconds")
        counter = Counter("repro_test_total")

        def work():
            for _ in range(1000):
                hist.observe(0.01)
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert int(counter) == 4000
        assert hist.snapshot()["count"] == 4000


class TestFamily:
    def test_labels_get_or_create(self):
        family = Family(
            Counter, "repro_events_total", labelnames=("event",)
        )
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels("b").inc()
        assert int(family.labels("a")) == 2
        samples = family.samples()
        assert [(labels["event"], value) for _s, labels, value in samples] == [
            ("a", 2), ("b", 1)
        ]

    def test_wrong_arity_rejected(self):
        family = Family(Counter, "repro_events_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")


# -- registry + exposition ------------------------------------------------------


class TestRegistry:
    def test_get_or_create_and_attach(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_a_total")
        assert registry.counter("repro_a_total") is counter
        external = Counter("repro_b_total")
        registry.attach(external)
        registry.attach(external)  # idempotent for the same object
        with pytest.raises(ValueError):
            registry.attach(Counter("repro_b_total"))

    def test_render_is_valid_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total").inc(3)
        registry.gauge("repro_depth").set(2.5)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        family = Family(Counter, "repro_ev_total", labelnames=("kind",))
        family.labels("x").inc()
        registry.attach(family)
        text = registry.render()
        assert validate_exposition(text) == []
        assert "# TYPE repro_reqs_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'repro_ev_total{kind="x"} 1' in text

    def test_labeled_callback_gauge(self):
        registry = MetricsRegistry()
        registry.callback(
            "repro_mem_bytes",
            lambda: {"s1": 10, "s2": 20}, labelnames=("session",),
        )
        text = registry.render()
        assert 'repro_mem_bytes{session="s1"} 10' in text
        assert 'repro_mem_bytes{session="s2"} 20' in text
        assert validate_exposition(text) == []

    def test_as_dict_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc()
        registry.gauge("repro_b").set(1.5)
        registry.histogram("repro_c_seconds").observe(0.1)
        json.dumps(registry.as_dict())


class TestValidator:
    def test_catches_duplicate_type(self):
        bad = (
            "# TYPE repro_x gauge\nrepro_x 1\n"
            "# TYPE repro_x gauge\nrepro_x 2\n"
        )
        problems = validate_exposition(bad)
        assert problems

    def test_catches_missing_type(self):
        assert validate_exposition("repro_x 1\n")

    def test_catches_nonmonotone_histogram(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1.0"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        assert any("monotone" in p for p in validate_exposition(bad))

    def test_catches_inf_count_mismatch(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        assert any("+Inf" in p for p in validate_exposition(bad))

    def test_accepts_good_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds").observe(0.2)
        registry.counter("repro_c_total").inc()
        assert validate_exposition(registry.render()) == []


# -- migrated subsystem counters ------------------------------------------------


@pytest.fixture()
def engine():
    engine = Engine(uniform_database(3, 30, domain_size=5, seed=3))
    yield engine
    engine.close()


class TestSubsystemMigration:
    def test_engine_stats_register_and_scrape(self, engine):
        prepared = engine.prepare("Q(x, z) :- R1(x, y), R2(y, z)")
        list(itertools.islice(prepared.iter(), 3))
        registry = MetricsRegistry()
        engine.register_metrics(registry)
        text = registry.render()
        assert validate_exposition(text) == []
        assert "# TYPE repro_engine_prepare_misses_total counter" in text
        assert "repro_engine_stream_count" in text
        stats = engine.stats.as_dict()
        json.dumps(stats)
        assert stats["prepare_misses"] >= 1

    def test_memory_stats_populates_after_run(self, engine):
        prepared = engine.prepare("Q(x, z) :- R1(x, y), R2(y, z)")
        # stream() is the memoized fetch path — the one that actually
        # holds result prefixes in engine memory.
        prepared.stream().ensure(5)
        memory = engine.memory_stats()
        assert memory["stream_count"] >= 1
        assert memory["stream_bytes"] > 0
        assert memory["core_mmap_bytes"] >= 0

    def test_session_memory_budget_enforced(self, engine):
        from repro.serve.session import SessionBudgetExceeded, SessionManager

        # A budget that admits the empty stream but not held results:
        # before the first fetch only the empty prefix list is charged.
        manager = SessionManager(engine, memory_budget_bytes=128)
        session, cursor_id = manager.open_cursor(
            "tiny", "Q(x, z) :- R1(x, y), R2(y, z)"
        )
        assert manager.session_memory_bytes(session) <= 128
        manager.fetch("tiny", cursor_id, 4)  # admitted: nothing held yet
        with pytest.raises(SessionBudgetExceeded, match="memory budget"):
            manager.fetch("tiny", cursor_id, 4)
        assert manager.session_memory_bytes(session) > 128

    def test_session_memory_gauges(self, engine):
        from repro.serve.session import SessionManager

        manager = SessionManager(engine)
        _session, cursor_id = manager.open_cursor(
            "obs", "Q(x, z) :- R1(x, y), R2(y, z)"
        )
        manager.fetch("obs", cursor_id, 3)
        registry = MetricsRegistry()
        manager.register_metrics(registry)
        text = registry.render()
        assert validate_exposition(text) == []
        assert 'repro_session_memory_bytes{session="obs"}' in text
        by_session = manager.memory_by_session()
        assert by_session["obs"] > 0
        stats = manager.stats()
        json.dumps(stats)
        assert stats["sessions"]["obs"]["memory_bytes"] == by_session["obs"]

    def test_policy_metrics(self):
        from repro.serve.policy import AccessPolicy

        policy = AccessPolicy(auth_token="secret")
        assert not policy.authorize("wrong-token")
        registry = MetricsRegistry()
        policy.register_metrics(registry)
        text = registry.render()
        assert validate_exposition(text) == []
        assert "repro_policy_denied_auth_total 1" in text
        assert "repro_policy_in_flight 0" in text

    def test_resilience_counters_exposed_as_family(self):
        from repro.serve.resilience import COUNTERS

        COUNTERS.reset()
        COUNTERS.bump("deadline_exceeded")
        COUNTERS.bump("deadline_exceeded")
        registry = MetricsRegistry()
        registry.attach(COUNTERS.family)
        text = registry.render()
        assert (
            'repro_resilience_events_total{event="deadline_exceeded"} 2'
            in text
        )
        assert validate_exposition(text) == []
        COUNTERS.reset()


# -- profiler -------------------------------------------------------------------


class TestProfiler:
    def test_samples_and_collapsed_output(self):
        profiler = SamplingProfiler(hz=500)
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                math.sqrt(12345.0)

        worker = threading.Thread(target=spin)
        worker.start()
        try:
            with profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 0
        collapsed = profiler.collapsed()
        assert collapsed
        line = collapsed.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_top_truncation(self):
        profiler = SamplingProfiler(hz=100)
        profiler.sample_once()
        full = profiler.collapsed()
        top1 = profiler.collapsed(top=1)
        assert len(top1.splitlines()) <= 1
        assert not full or top1.splitlines()[0] == full.splitlines()[0]

    def test_stage_attribution(self):
        assert stage_of("/x/src/repro/dp/flat.py") == "enumerate"
        assert stage_of("/x/src/repro/anyk/flat.py") == "enumerate"
        assert stage_of("/x/src/repro/engine/engine.py") == "engine"
        assert stage_of("/x/src/repro/serve/gateway.py") == "serve"
        assert stage_of("/x/src/repro/backends/foo.py") == "storage"
        assert stage_of("/x/src/repro/obs/trace.py") == "obs"
        assert stage_of("/x/src/repro/util/counters.py") == "other"
        assert stage_of("/usr/lib/python3.11/json/decoder.py") is None

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(hz=10)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()


# -- operator views -------------------------------------------------------------


_METRICS_DOC = {
    "uptime_seconds": 12.5,
    "gateway": {"http_requests": 10, "ws_messages": 4, "active_requests": 1},
    "policy": {
        "admitted": 9, "throttled": 1, "denied_auth": 0, "shed": 0,
        "breaker": {"state": "closed", "opened": 0, "rejected": 0},
    },
    "latency": {
        "fetch": {"total": 9, "p50_ms": 2.0, "p95_ms": 10.0, "p99_ms": 20.0}
    },
    "memory": {
        "stream_count": 2, "stream_bytes": 4096,
        "core_heap_bytes": 1 << 20, "core_mmap_bytes": 0,
        "session_bytes": 4096,
    },
    "sessions": {
        "session_count": 1,
        "evictions": 0,
        "expirations": 0,
        "detail": {
            "s1": {"served": 5, "cursors": 1, "memory_bytes": 4096,
                   "idle_seconds": 0.5},
        },
    },
    "engine": {"prepare_hits": 3, "prepare_misses": 1},
}


class TestOperatorViews:
    def test_render_top_contains_sections(self):
        frame = render_top(_METRICS_DOC)
        assert "repro top" in frame
        assert "http 10" in frame
        assert "p95 10.00ms" in frame
        assert "s1" in frame
        assert "4.0KiB" in frame
        assert "breaker closed" in frame

    def test_render_top_empty_document(self):
        frame = render_top({})
        assert "repro top" in frame
        assert "(no open sessions)" in frame

    def test_debug_html_escapes_and_renders(self):
        doc = dict(_METRICS_DOC)
        doc = json.loads(json.dumps(doc))
        doc["sessions"]["detail"]["<evil>"] = {
            "served": 0, "cursors": 0, "memory_bytes": 0, "idle_seconds": 0,
        }
        page = debug_html(doc)
        assert page.startswith("<!DOCTYPE html>")
        assert "&lt;evil&gt;" in page
        assert "<evil>" not in page
        assert "repro gateway" in page

    def test_run_top_single_poll(self, monkeypatch):
        from repro.obs import top as top_module

        frames = []
        monkeypatch.setattr(
            top_module, "fetch_metrics",
            lambda url, token=None, timeout=5.0: _METRICS_DOC,
        )
        rendered = top_module.run_top(
            "http://unused/metrics", iterations=2, interval=0.0,
            out=frames.append, sleep=lambda _s: None,
        )
        assert rendered == 2
        assert len(frames) == 2
        assert frames[0].startswith("repro top")
        assert frames[1].startswith("\x1b[2J\x1b[H")
