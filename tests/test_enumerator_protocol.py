"""Enumerator protocol tests: interleaving, bounds, Boolean evaluation."""

import pytest

from repro.anyk.base import make_enumerator
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.dp.builder import build_tdp_for_query
from repro.enumeration.api import evaluate_boolean, ranked_enumerate
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from repro.util.counters import OpCounter
from tests.conftest import ALL_ALGORITHMS, brute_force


class TestInterleaving:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_two_enumerators_share_tdp_safely(self, algorithm):
        """Concurrent enumerators over one TDP must not interfere."""
        db = uniform_database(3, 25, domain_size=4, seed=1)
        tdp = build_tdp_for_query(db, path_query(3))
        first = make_enumerator(tdp, algorithm)
        second = make_enumerator(tdp, algorithm)
        stream_a = []
        stream_b = []
        # Interleave pulls in an irregular pattern.
        for steps_a, steps_b in [(3, 1), (1, 4), (5, 2), (2, 5)]:
            stream_a.extend(r.weight for r in first.top(steps_a))
            stream_b.extend(r.weight for r in second.top(steps_b))
        reference = [w for w, _ in brute_force(db, path_query(3))]
        assert stream_a == pytest.approx(reference[: len(stream_a)])
        assert stream_b == pytest.approx(reference[: len(stream_b)])

    def test_mixed_algorithms_on_shared_tdp(self):
        db = uniform_database(3, 25, domain_size=4, seed=2)
        tdp = build_tdp_for_query(db, path_query(3))
        enums = [make_enumerator(tdp, name) for name in ALL_ALGORITHMS]
        streams = [[r.weight for r in e.top(20)] for e in enums]
        for stream in streams[1:]:
            assert stream == pytest.approx(streams[0])


class TestWithin:
    def test_weight_bound(self):
        db = uniform_database(2, 30, domain_size=4, seed=3)
        tdp = build_tdp_for_query(db, path_query(2))
        expected = [w for w, _ in brute_force(db, path_query(2)) if w <= 5000]
        enum = make_enumerator(tdp, "take2")
        got = [r.weight for r in enum.within(5000.0)]
        assert got == pytest.approx(expected)

    def test_bound_below_minimum_is_empty(self):
        db = uniform_database(2, 10, domain_size=2, seed=4)
        tdp = build_tdp_for_query(db, path_query(2))
        enum = make_enumerator(tdp, "lazy")
        assert list(enum.within(-1.0)) == []

    def test_max_plus_bound_direction(self):
        from repro.ranking.dioid import MAX_PLUS

        db = uniform_database(2, 20, domain_size=3, seed=5)
        tdp = build_tdp_for_query(db, path_query(2), dioid=MAX_PLUS)
        enum = make_enumerator(tdp, "take2")
        got = [r.weight for r in enum.within(15_000.0)]
        assert all(w >= 15_000.0 for w in got), "max-plus: within = at least"


class TestBooleanEvaluation:
    def test_satisfiable_acyclic(self):
        db = uniform_database(3, 20, domain_size=3, seed=6)
        assert evaluate_boolean(db, path_query(3)) is True

    def test_unsatisfiable(self):
        from repro.data.database import Database
        from repro.data.relation import Relation

        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        assert evaluate_boolean(db, path_query(2)) is False

    def test_boolean_4cycle(self):
        db = worst_case_cycle_database(4, 12, seed=7)
        assert evaluate_boolean(db, cycle_query(4)) is True

    def test_boolean_with_projection_head(self):
        db = uniform_database(2, 15, domain_size=2, seed=8)
        query = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        assert evaluate_boolean(db, query) is True

    def test_does_little_work(self):
        db = uniform_database(3, 60, domain_size=6, seed=9)
        counter = OpCounter()
        assert evaluate_boolean(db, path_query(3), counter=counter)
        # Existence established after a single result's worth of work.
        assert counter.results <= 1
        assert counter.pq_pop <= 10


class TestSinglePass:
    def test_enumerators_are_single_pass(self):
        db = uniform_database(2, 15, domain_size=2, seed=10)
        tdp = build_tdp_for_query(db, path_query(2))
        enum = make_enumerator(tdp, "take2")
        total = sum(1 for _ in enum)
        assert total > 0
        assert list(enum) == [], "exhausted enumerators stay exhausted"

    def test_ranked_enumerate_returns_fresh_iterators(self):
        db = uniform_database(2, 15, domain_size=2, seed=11)
        first = list(ranked_enumerate(db, path_query(2)))
        second = list(ranked_enumerate(db, path_query(2)))
        assert [r.weight for r in first] == [r.weight for r in second]
