"""Tests for UCQ ranked enumeration and the ASCII chart renderer."""

import pytest

from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.relation import Relation
from repro.enumeration.api import ranked_enumerate, ranked_enumerate_ucq
from repro.experiments.ascii import ascii_chart, curve_chart
from repro.experiments.runner import measure_ttk
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from tests.conftest import brute_force, weight_signature


class TestUCQ:
    def test_disjoint_members_merge_ranked(self):
        db = Database(
            [
                Relation("A1", 2, [(1, 2), (3, 4)], [1.0, 7.0]),
                Relation("A2", 2, [(2, 5), (4, 6)], [2.0, 1.0]),
                Relation("B1", 2, [(9, 8), (7, 6)], [0.5, 3.0]),
                Relation("B2", 2, [(8, 1), (6, 2)], [0.25, 4.0]),
            ]
        )
        q1 = parse_query("Q(x, y, z) :- A1(x, y), A2(y, z)")
        q2 = parse_query("P(a, b, c) :- B1(a, b), B2(b, c)")
        merged = list(ranked_enumerate_ucq(db, [q1, q2]))
        weights = [r.weight for r in merged]
        assert weights == sorted(weights)
        expected = sorted(
            [w for w, _ in brute_force(db, q1)]
            + [w for w, _ in brute_force(db, q2)]
        )
        assert weights == pytest.approx(expected)
        # Output named after the first query's head.
        assert set(merged[0].assignment) == {"x", "y", "z"}

    def test_identical_members_dedup(self):
        db = uniform_database(2, 15, domain_size=3, seed=1)
        q = path_query(2)
        merged = list(ranked_enumerate_ucq(db, [q, q]))
        single = list(ranked_enumerate(db, q))
        assert weight_signature(
            (r.weight, r.output_tuple) for r in merged
        ) == weight_signature((r.weight, r.output_tuple) for r in single)

    def test_dedup_off_doubles(self):
        db = uniform_database(2, 10, domain_size=2, seed=2)
        q = path_query(2)
        merged = list(ranked_enumerate_ucq(db, [q, q], dedup=False))
        single = list(ranked_enumerate(db, q))
        assert len(merged) == 2 * len(single)

    def test_cyclic_member_flattened(self):
        db = worst_case_cycle_database(4, 8, seed=3)
        db.add(Relation("P1", 2, [(100, 200)], [0.1]))
        db.add(Relation("P2", 2, [(200, 300)], [0.1]))
        db.add(Relation("P3", 2, [(300, 400)], [0.1]))
        cyc = cycle_query(4)
        pth = path_query(3).atoms
        from repro.query.cq import ConjunctiveQuery

        path_q = ConjunctiveQuery(
            None,
            [a.__class__(f"P{i+1}", a.variables) for i, a in enumerate(pth)],
            name="P",
        )
        merged = list(ranked_enumerate_ucq(db, [cyc, path_q]))
        weights = [r.weight for r in merged]
        assert weights == sorted(weights)
        assert len(merged) == 2 * 4 * 4 + 1

    def test_head_arity_mismatch_rejected(self):
        db = uniform_database(2, 5, domain_size=2, seed=4)
        with pytest.raises(ValueError, match="same head arity"):
            list(ranked_enumerate_ucq(db, [path_query(2), path_query(1)]))

    def test_non_full_member_rejected(self):
        db = uniform_database(2, 5, domain_size=2, seed=5)
        q = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        with pytest.raises(ValueError, match="full CQ"):
            list(ranked_enumerate_ucq(db, [q]))

    def test_empty_union_rejected(self):
        db = uniform_database(1, 5, domain_size=2, seed=6)
        with pytest.raises(ValueError, match="at least one query"):
            list(ranked_enumerate_ucq(db, []))


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"lazy": [(1, 0.1), (50, 0.5)], "batch": [(1, 0.4), (50, 0.6)]}
        )
        assert "legend:" in chart
        assert "L = lazy" in chart
        assert "B = batch" in chart
        assert chart.count("|") >= 14

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_single_point(self):
        chart = ascii_chart({"x": [(5, 1.0)]})
        assert "X = x" in chart

    def test_marker_collision_resolved(self):
        chart = ascii_chart(
            {"take2": [(1, 1.0)], "twister": [(2, 2.0)]}
        )
        lines = [l for l in chart.splitlines() if l.startswith(" legend")]
        markers = [part.split(" = ")[0].strip() for part in lines[0].split("   ")]
        # After "legend:" prefix handling, markers must be distinct.
        assert len(set(chart.split("legend: ")[1].split("   "))) == 2

    def test_curve_chart_from_results(self):
        db = uniform_database(2, 20, domain_size=3, seed=7)
        results = [
            measure_ttk(db, path_query(2), name, k=20)
            for name in ("take2", "batch")
        ]
        chart = curve_chart(results)
        assert "take2" in chart and "batch" in chart
