"""Observability layer: tracing, EXPLAIN ANALYZE, exporters, request ids."""

from __future__ import annotations

import http.client
import itertools
import json
import logging
import threading
import time

import pytest

from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.obs import (
    LatencyStats,
    LatencyWindow,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    current_span,
    delay_profile,
    new_request_id,
    percentile,
    prometheus_text,
    tracer_from_option,
    write_chrome_trace,
)
from repro.query.builders import path_query
from repro.util.counters import OpCounter

VARIANTS = [
    "take2", "lazy", "eager", "all", "recursive", "batch", "batch_nosort",
]

QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"


@pytest.fixture(scope="module")
def database():
    return uniform_database(3, 40, domain_size=5, seed=9)


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


# -- tracer core ---------------------------------------------------------------


class TestTracer:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer(sample="always")
        with tracer.span("outer", kind="root") as outer:
            assert current_span() is outer
            with tracer.span("inner.a") as a:
                assert current_span() is a
            with tracer.span("inner.b"):
                pass
        assert current_span() is None
        spans = tracer.spans()
        # Children record before the parent (exit order), one trace id.
        assert [s.name for s in spans] == ["inner.a", "inner.b", "outer"]
        assert len({s.trace_id for s in spans}) == 1
        by_name = {s.name: s for s in spans}
        assert by_name["outer"].parent_id is None
        assert by_name["inner.a"].parent_id == by_name["outer"].span_id
        assert by_name["inner.b"].parent_id == by_name["outer"].span_id
        assert by_name["inner.a"].span_id != by_name["inner.b"].span_id
        assert by_name["outer"].attrs == {"kind": "root"}
        for span in spans:
            assert span.end >= span.start
            assert span.duration >= 0.0

    def test_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(items=3, hit=True)
        assert tracer.spans()[0].attrs == {"items": 3, "hit": True}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"
        assert current_span() is None

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        stats = tracer.stats()
        assert stats["buffered"] == 4
        assert stats["recorded"] == 10
        assert stats["dropped"] == 6
        # Oldest fell out, newest survive.
        assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_sampling_decided_per_root_children_inherit(self):
        rolls = itertools.cycle([0.1, 0.9])
        tracer = Tracer(sample=0.5, rng=lambda: next(rolls))
        with tracer.span("kept"):          # roll 0.1 < 0.5 -> sampled
            with tracer.span("kept.child"):
                pass
        with tracer.span("dropped"):       # roll 0.9 >= 0.5 -> unsampled
            with tracer.span("dropped.child") as child:
                # Unsampled spans still keep the parent chain intact.
                assert child.parent_id is not None
        names = [s.name for s in tracer.spans()]
        assert names == ["kept.child", "kept"]

    def test_drain_clears_buffer(self):
        tracer = Tracer()
        with tracer.span("once"):
            pass
        assert [s.name for s in tracer.drain()] == ["once"]
        assert tracer.spans() == []
        assert tracer.stats()["buffered"] == 0

    def test_thread_spans_start_fresh_roots(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("thread.root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker thread must not nest under the main thread's span.
        assert seen["parent"] is None

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.span("anything", k=1) is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span.set(a=1) is NULL_SPAN
            assert span.duration == 0.0
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.stats()["enabled"] is False

    def test_tracer_from_option(self):
        assert tracer_from_option(None) is NULL_TRACER
        assert tracer_from_option("off") is NULL_TRACER
        assert tracer_from_option("0") is NULL_TRACER
        assert tracer_from_option("always").ratio == 1.0
        assert tracer_from_option("0.25").ratio == 0.25
        assert tracer_from_option(0.5).ratio == 0.5
        with pytest.raises(ValueError, match="ratio"):
            tracer_from_option("1.5")
        with pytest.raises(ValueError, match="sample"):
            tracer_from_option("sometimes")

    def test_new_request_id_shape(self):
        one, two = new_request_id(), new_request_id()
        assert one != two
        for rid in (one, two):
            assert len(rid) == 12
            int(rid, 16)  # hex


# -- no-op identity: tracing must never change results or counters -------------


class TestNoOpIdentity:
    @pytest.mark.parametrize("algorithm", VARIANTS)
    def test_results_and_counters_identical(self, database, algorithm):
        plain = Engine(database)
        traced = Engine(database, tracer=Tracer(sample="always"))
        try:
            off = plain.prepare(QUERY, algorithm=algorithm)
            on = traced.prepare(QUERY, algorithm=algorithm)
            assert signature(off.top(40)) == signature(on.top(40))
            counter_off, counter_on = OpCounter(), OpCounter()
            list(
                itertools.islice(
                    off.bind().iter(counter_off, algorithm=algorithm), 40
                )
            )
            list(
                itertools.islice(
                    on.bind().iter(counter_on, algorithm=algorithm), 40
                )
            )
            assert counter_off.as_dict() == counter_on.as_dict()
            assert traced.tracer.spans(), "traced engine recorded no spans"
        finally:
            plain.close()
            traced.close()

    def test_sharded_results_identical(self, database):
        plain = Engine(database)
        traced = Engine(database, tracer=Tracer(sample="always"))
        try:
            off = plain.prepare(QUERY, shards=2)
            on = traced.prepare(QUERY, shards=2)
            assert signature(off.top(40)) == signature(on.top(40))
        finally:
            plain.close()
            traced.close()


# -- engine spans --------------------------------------------------------------


class TestEngineSpans:
    def test_prepare_and_bind_spans(self, database):
        engine = Engine(database, tracer=Tracer(sample="always"))
        try:
            prepared = engine.prepare(QUERY)
            prepared.bind()
            names = {s.name for s in engine.tracer.spans()}
            assert {"engine.prepare", "engine.bind", "tdp.build",
                    "tdp.compile"} <= names
            bind = next(
                s for s in engine.tracer.spans() if s.name == "engine.bind"
            )
            build = next(
                s for s in engine.tracer.spans() if s.name == "tdp.build"
            )
            assert build.parent_id == bind.span_id
            assert build.attrs["states"] > 0
        finally:
            engine.close()

    def test_stream_extension_span(self, database):
        engine = Engine(database, tracer=Tracer(sample="always"))
        try:
            engine.prepare(QUERY).top(5)
            extend = [
                s for s in engine.tracer.spans() if s.name == "stream.extend"
            ]
            assert extend
            assert extend[-1].attrs["produced"] >= 5
        finally:
            engine.close()

    def test_sharded_bind_spans(self, database):
        engine = Engine(database, tracer=Tracer(sample="always"))
        try:
            engine.prepare(QUERY, shards=2).bind()
            names = {s.name for s in engine.tracer.spans()}
            assert {"shard.plan", "fragments.build", "shared.lower",
                    "fragments.fanout"} <= names
        finally:
            engine.close()

    def test_core_cache_hit_span(self, tmp_path, database):
        from repro.data.backend import SQLiteBackend

        path = str(tmp_path / "obs.db")
        backend = SQLiteBackend(path)
        for relation in database:
            backend.ingest(relation)
        backend.close()
        query = path_query(3)
        # Cold engine writes the core...
        cold = Engine.from_backend(SQLiteBackend(path), core_cache="on")
        cold.prepare(query).bind()
        cold.close()
        # ...warm engine's bind must trace a core-cache hit.
        warm = Engine.from_backend(
            SQLiteBackend(path), core_cache="on",
            tracer=Tracer(sample="always"),
        )
        try:
            warm.prepare(query).bind()
            load = [
                s for s in warm.tracer.spans() if s.name == "core.load"
            ]
            assert load and load[-1].attrs["hit"] is True
            assert not any(
                s.name == "tdp.build" for s in warm.tracer.spans()
            )
        finally:
            warm.close()


# -- EXPLAIN ANALYZE -----------------------------------------------------------


class TestAnalyze:
    @pytest.mark.parametrize("algorithm", VARIANTS)
    @pytest.mark.parametrize("shards", [None, 2])
    def test_analyze_all_variants(self, database, algorithm, shards):
        engine = Engine(database)
        try:
            prepared = engine.prepare(
                QUERY, algorithm=algorithm, shards=shards
            )
            report = prepared.analyze(12)
            assert report.algorithm == algorithm
            assert 0 < report.produced <= 12
            assert report.total_ms >= report.bind_ms >= 0.0
            assert report.stages, "no stage tree recorded"
            stage_names = set()

            def walk(nodes):
                for node in nodes:
                    stage_names.add(node.name)
                    walk(node.children)

            walk(report.stages)
            assert {"analyze", "bind", "enumerate"} <= stage_names
            delay = report.delay
            assert delay["produced"] == report.produced
            assert delay["ttk_ms"] >= delay["ttf_ms"] >= 0.0
            assert delay["delay_max_us"] >= delay["delay_p50_us"]
            assert sum(report.counters.values()) > 0
            if shards:
                assert report.shard_counts is not None
                assert sum(report.shard_counts) == report.produced
                assert report.shard_stats["shards"] == shards
            else:
                assert report.shard_counts is None
            text = report.render()
            assert text.startswith("EXPLAIN ANALYZE")
            assert "delay profile" in text
            assert algorithm in text
            as_dict = report.as_dict()
            assert as_dict["produced"] == report.produced
            assert as_dict["stages"][0]["name"] == report.stages[0].name
        finally:
            engine.close()

    def test_analyze_reports_compiled_core(self, database):
        engine = Engine(database)
        try:
            report = engine.prepare(QUERY).analyze(5)
            assert report.core is not None
            assert report.core["entries"] > 0
            sharded = engine.prepare(QUERY, shards=2).analyze(5)
            assert sharded.core is not None
            assert sharded.core["fragments"] == 2
        finally:
            engine.close()

    def test_analyze_spans_land_in_caller_tracer(self, database):
        engine = Engine(database)
        tracer = Tracer(sample="always")
        try:
            engine.prepare(QUERY).analyze(5, tracer=tracer)
            assert any(s.name == "analyze" for s in tracer.spans())
        finally:
            engine.close()

    def test_analyze_rejects_negative_k(self, database):
        engine = Engine(database)
        try:
            with pytest.raises(ValueError, match="non-negative"):
                engine.prepare(QUERY).analyze(-1)
        finally:
            engine.close()

    def test_analyze_k_zero_yields_empty_profile(self, database):
        engine = Engine(database)
        try:
            report = engine.prepare(QUERY).analyze(0)
            assert report.produced == 0
            assert report.delay["ttf_ms"] == 0.0
        finally:
            engine.close()


# -- exporters -----------------------------------------------------------------


class TestExporters:
    def test_chrome_trace_events_shape(self):
        tracer = Tracer(sample="always")
        with tracer.span("outer", query="Q"):
            with tracer.span("inner"):
                pass
        events = chrome_trace_events(tracer.spans())
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["pid"] == 1
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"]["query"] == "Q"
        assert outer["cat"] == "outer"
        inner = next(e for e in complete if e["name"] == "inner")
        assert inner["cat"] == "inner"
        # The document round-trips through JSON.
        parsed = json.loads(chrome_trace_json(tracer.spans()))
        assert len(parsed["traceEvents"]) == len(events)

    def test_write_chrome_trace(self, tmp_path):
        tracer = Tracer(sample="always")
        with tracer.span("alpha"):
            pass
        out = tmp_path / "trace.json"
        count = write_chrome_trace(str(out), tracer)
        assert count == 2  # metadata + one span
        document = json.loads(out.read_text())
        assert any(
            e["name"] == "alpha" for e in document["traceEvents"]
        )

    def test_prometheus_text_shape(self):
        metrics = {
            "http": {"requests": 7, "ws_connections": 0},
            "latency": {"fetch": {"p99_ms": 1.25}},
            "ok": True,
            "name": "ignored-string",
            "list": [1, 2, 3],
        }
        text = prometheus_text(metrics)
        lines = text.strip().splitlines()
        assert "# TYPE repro_http_requests gauge" in lines
        assert "repro_http_requests 7" in lines
        assert "repro_latency_fetch_p99_ms 1.25" in lines
        assert "repro_ok 1" in lines
        assert not any("ignored" in line for line in lines)
        assert not any("list" in line for line in lines)
        assert text.endswith("\n")
        # Deterministic ordering: value lines arrive sorted by name.
        value_lines = [l for l in lines if not l.startswith("#")]
        assert value_lines == sorted(value_lines)

    def test_prometheus_text_empty(self):
        assert prometheus_text({}) == ""

    def test_prometheus_text_name_collisions_deduped(self):
        # Two distinct paths flatten to the same metric name; emitting
        # the name (and its # TYPE line) twice is invalid exposition.
        from repro.obs.metrics import validate_exposition

        metrics = {"a": {"b_c": 1}, "a_b": {"c": 2}, "x y": 3, "x_y": 4}
        text = prometheus_text(metrics)
        lines = text.strip().splitlines()
        names = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert len(names) == len(set(names)) == 4
        assert validate_exposition(text) == []
        # Deterministic: the lexicographically-smaller path keeps the
        # bare name and the collider gets a stable suffix.
        assert "repro_a_b_c 1" in lines
        assert "repro_a_b_c_2 2" in lines
        assert "repro_x_y 3" in lines
        assert "repro_x_y_2 4" in lines
        assert prometheus_text(metrics) == text

    def test_chrome_trace_stable_small_tids(self):
        tracer = Tracer(sample="always")
        with tracer.span("solo"):
            pass
        done = threading.Event()

        def other():
            with tracer.span("worker"):
                done.set()

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        assert done.is_set()
        events = chrome_trace_events(tracer.spans())
        span_events = [e for e in events if e["ph"] == "X"]
        tids = {e["tid"] for e in span_events}
        # Two threads -> two small per-thread ids, disjoint from the
        # metadata row's tid 0, regardless of the native idents.
        assert len(tids) == 2
        assert all(0 < tid <= len(span_events) for tid in tids)


# -- shared latency implementation --------------------------------------------


class TestLatencySharing:
    def test_runner_reexports_the_obs_implementation(self):
        from repro.experiments import runner

        assert runner.LatencyStats is LatencyStats
        assert runner.LatencyWindow is LatencyWindow
        assert runner.percentile is percentile

    def test_delay_profile_values(self):
        profile = delay_profile([0.001, 0.0005, 0.002])
        assert profile["produced"] == 3
        assert profile["ttf_ms"] == 1.0
        assert profile["ttk_ms"] == 3.5
        assert profile["delay_max_us"] == 2000.0
        empty = delay_profile([])
        assert empty["produced"] == 0
        assert empty["ttf_ms"] == 0.0

    def test_latency_window_rolls(self):
        window = LatencyWindow(maxlen=4)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            window.record(value)
        snap = window.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 5
        assert snap["p50_ms"] == pytest.approx(300.0)


# -- gateway: negotiation, request ids, spans ----------------------------------


@pytest.fixture(scope="module")
def traced_engine(database):
    engine = Engine(database, tracer=Tracer(sample="always"))
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def gateway(traced_engine):
    from repro.serve import GatewayThread

    with GatewayThread(traced_engine, slice_size=8) as address:
        yield address


def http_request(address, method, path, headers=None, body=None):
    conn = http.client.HTTPConnection(*address)
    conn.request(method, path, body=body, headers=headers or {})
    response = conn.getresponse()
    payload = response.read()
    conn.close()
    return response, payload


class TestGatewayObservability:
    def test_metrics_defaults_to_json(self, gateway):
        response, payload = http_request(gateway, "GET", "/metrics")
        assert response.status == 200
        assert "application/json" in response.getheader("Content-Type")
        metrics = json.loads(payload)
        assert "tracing" in metrics
        assert metrics["tracing"]["enabled"] is True

    def test_metrics_prometheus_negotiation(self, gateway):
        response, payload = http_request(
            gateway, "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert response.status == 200
        content_type = response.getheader("Content-Type")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        text = payload.decode("utf-8")
        assert "# TYPE repro_gateway_http_requests_total counter" in text
        assert "repro_tracing_recorded" in text

    def test_metrics_prometheus_is_valid_exposition(self, gateway):
        from repro.obs.metrics import validate_exposition

        # Exercise a fetch first so the latency histogram has samples.
        response, payload = http_request(
            gateway, "POST", "/v1/prepare",
            body=json.dumps({"session": "obsval", "query": QUERY}),
            headers={"Content-Type": "application/json"},
        )
        assert response.status == 200, payload
        cursor = json.loads(payload)["cursor"]
        response, payload = http_request(
            gateway, "POST", "/v1/fetch",
            body=json.dumps(
                {"session": "obsval", "cursor": cursor, "n": 3}
            ),
            headers={"Content-Type": "application/json"},
        )
        assert response.status == 200, payload
        _response, payload = http_request(
            gateway, "GET", "/metrics?format=prometheus"
        )
        text = payload.decode("utf-8")
        assert validate_exposition(text) == []
        assert "# TYPE repro_fetch_latency_seconds histogram" in text
        assert 'repro_fetch_latency_seconds_bucket{le="' in text
        assert 'le="+Inf"' in text
        assert "# TYPE repro_session_memory_bytes gauge" in text
        assert 'repro_session_memory_bytes{session="obsval"}' in text
        assert "repro_engine_stream_bytes" in text
        assert "repro_engine_core_heap_bytes" in text

    def test_debug_page(self, gateway):
        response, payload = http_request(gateway, "GET", "/debug")
        assert response.status == 200
        assert "text/html" in response.getheader("Content-Type")
        text = payload.decode("utf-8")
        assert "<h1>repro gateway</h1>" in text
        assert "uptime_seconds" in text

    def test_metrics_json_memory_section(self, gateway):
        _response, payload = http_request(gateway, "GET", "/metrics")
        metrics = json.loads(payload)
        memory = metrics["memory"]
        for key in ("stream_count", "stream_bytes", "core_heap_bytes",
                    "core_mmap_bytes", "session_bytes"):
            assert key in memory
        assert isinstance(metrics["sessions"]["detail"], dict)

    def test_metrics_prometheus_query_param(self, gateway):
        response, payload = http_request(
            gateway, "GET", "/metrics?format=prometheus"
        )
        assert response.status == 200
        assert payload.decode("utf-8").startswith("# TYPE repro_")

    def test_request_id_echoed(self, gateway):
        response, _payload = http_request(
            gateway, "GET", "/healthz",
            headers={"X-Request-Id": "fixed-id-0001"},
        )
        assert response.getheader("X-Request-Id") == "fixed-id-0001"

    def test_request_id_generated_when_absent(self, gateway):
        response, _payload = http_request(gateway, "GET", "/healthz")
        generated = response.getheader("X-Request-Id")
        assert generated
        assert len(generated) == 12
        int(generated, 16)

    def test_access_log_carries_request_id_and_duration(self, gateway):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        logger = logging.getLogger("repro.serve.gateway")
        handler = Capture()
        old_level = logger.level
        logger.setLevel(logging.INFO)
        logger.addHandler(handler)
        try:
            http_request(
                gateway, "GET", "/healthz",
                headers={"X-Request-Id": "log-probe-001"},
            )
            # The access-log line is emitted after the response bytes
            # flush, so the client can observe the reply first.
            deadline = time.time() + 5.0
            while not records and time.time() < deadline:
                time.sleep(0.01)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        lines = [json.loads(text) for text in records]
        probe = [l for l in lines if l.get("request_id") == "log-probe-001"]
        assert probe, f"no access-log line with the probe id: {lines}"
        assert probe[0]["path"] == "/healthz"
        assert probe[0]["status"] == 200
        assert probe[0]["ms"] >= 0.0

    def test_http_dispatch_roots_span_with_request_id(
        self, gateway, traced_engine
    ):
        traced_engine.tracer.clear()
        response, payload = http_request(
            gateway, "POST", "/v1/prepare",
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": "span-probe-01",
            },
            body=json.dumps({"session": "obs", "query": QUERY}).encode(),
        )
        assert response.status == 200
        cursor = json.loads(payload)["cursor"]
        http_request(
            gateway, "POST", "/v1/fetch",
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": "span-probe-02",
            },
            body=json.dumps(
                {"session": "obs", "cursor": cursor, "n": 5}
            ).encode(),
        )
        spans = traced_engine.tracer.spans()
        roots = [s for s in spans if s.name == "gateway.request"]
        assert {"span-probe-01", "span-probe-02"} <= {
            s.attrs["request_id"] for s in roots
        }
        fetch_root = next(
            s for s in roots if s.attrs["request_id"] == "span-probe-02"
        )
        # The session fetch nests in the same trace as the edge span.
        fetches = [
            s for s in spans
            if s.name == "session.fetch"
            and s.trace_id == fetch_root.trace_id
        ]
        assert fetches and fetches[0].attrs["served"] == 5


class TestTcpObservability:
    def test_tcp_request_span_carries_request_id(self, traced_engine):
        from repro.serve import ServeClient, ServerThread

        traced_engine.tracer.clear()
        with ServerThread(traced_engine) as address:
            client = ServeClient(*address)
            assert client.request(
                {"op": "ping", "request_id": "tcp-probe-77"}
            )["ok"]
            cursor = client.prepare("tcpobs", QUERY)["cursor"]
            client.fetch("tcpobs", cursor, 4)
            client.close()
        spans = traced_engine.tracer.spans()
        server_spans = [s for s in spans if s.name == "server.request"]
        assert any(
            s.attrs.get("request_id") == "tcp-probe-77" for s in server_spans
        )
        fetch_span = next(
            s for s in server_spans if s.attrs.get("op") == "fetch"
        )
        nested = [
            s for s in spans
            if s.name == "session.fetch" and s.trace_id == fetch_span.trace_id
        ]
        assert nested and nested[0].attrs["served"] == 4


class TestWsObservability:
    def test_ws_message_span_carries_request_id(self, gateway, traced_engine):
        from tests.test_gateway import _SyncWsClient

        traced_engine.tracer.clear()
        ws = _SyncWsClient(*gateway)
        assert ws.status == 101
        ws.send({"op": "ping", "request_id": "ws-probe-55"})
        assert ws.recv()["ok"]
        ws.close()

        def probe_spans():
            return [
                s
                for s in traced_engine.tracer.spans()
                if s.name == "gateway.ws"
                and s.attrs.get("request_id") == "ws-probe-55"
            ]

        # The span records on exit, just after the reply bytes flush, so
        # the client can observe the pong before the span lands.
        deadline = time.time() + 5.0
        while not probe_spans() and time.time() < deadline:
            time.sleep(0.01)
        spans = probe_spans()
        assert spans, "no gateway.ws span with the probe request id"
        assert spans[0].attrs.get("op") == "ping"


# -- CLI -----------------------------------------------------------------------


class TestCli:
    @pytest.fixture(scope="class")
    def data_dir(self, tmp_path_factory, database):
        from repro.data.io import save_database

        path = tmp_path_factory.mktemp("obsdata")
        save_database(database, str(path))
        return str(path)

    def test_explain_analyze_cli(self, data_dir, capsys):
        from repro.cli import main

        assert main(["explain", data_dir, QUERY, "--analyze", "5"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "delay profile" in out

    def test_trace_cli_writes_perfetto_file(self, data_dir, tmp_path, capsys):
        from repro.cli import main

        out_path = str(tmp_path / "cli_trace.json")
        assert main(
            ["trace", data_dir, QUERY, "--top", "5", "--out", out_path,
             "--analyze"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in stdout
        assert "trace events" in stdout
        document = json.loads(open(out_path).read())
        names = {e["name"] for e in document["traceEvents"]}
        assert {"analyze", "enumerate", "engine.bind"} <= names

    def test_serve_trace_sample_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "somewhere", "--trace-sample", "0.5"]
        )
        assert args.trace_sample == "0.5"
