"""Tests for the join algorithms: hash join, Yannakakis, Generic-Join,
and the Rank-Join baseline."""

from collections import Counter

import pytest

from repro.data.database import Database
from repro.data.generators import (
    rank_join_hard_instance,
    uniform_database,
    worst_case_cycle_database,
)
from repro.data.relation import Relation
from repro.joins.generic_join import build_trie, generic_join
from repro.joins.hash_join import hash_join, semijoin
from repro.joins.rank_join import rank_join_enumerate
from repro.joins.yannakakis import yannakakis
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.parser import parse_query
from repro.util.counters import OpCounter
from tests.conftest import brute_force, weight_signature


class TestSemijoin:
    def test_basic(self):
        left = Relation("L", 2, [(1, 2), (3, 4), (5, 6)], [1, 2, 3])
        right = Relation("R", 2, [(2, 9), (6, 9)], [0, 0])
        reduced = semijoin(left, [1], right, [0])
        assert reduced.tuples == [(1, 2), (5, 6)]
        assert reduced.weights == [1, 3]

    def test_column_count_mismatch(self):
        left = Relation("L", 2, [(1, 2)], [0])
        with pytest.raises(ValueError):
            semijoin(left, [0, 1], left, [0])


class TestHashJoin:
    def test_concatenates_and_adds_weights(self):
        left = Relation("L", 2, [(1, 2)], [1.5])
        right = Relation("R", 2, [(2, 7), (2, 8), (3, 9)], [1.0, 2.0, 3.0])
        out = hash_join(left, [1], right, [0])
        assert out.arity == 4
        assert sorted(out.tuples) == [(1, 2, 2, 7), (1, 2, 2, 8)]
        assert sorted(out.weights) == [2.5, 3.5]

    def test_custom_weight_combiner(self):
        left = Relation("L", 1, [(1,)], [2.0])
        right = Relation("R", 1, [(1,)], [3.0])
        out = hash_join(left, [0], right, [0], combine_weights=lambda a, b: a * b)
        assert out.weights == [6.0]


class TestYannakakis:
    @pytest.mark.parametrize("builder,ell,n,dom", [
        (path_query, 3, 30, 4),
        (path_query, 4, 20, 3),
        (star_query, 3, 25, 4),
    ])
    def test_matches_brute_force(self, builder, ell, n, dom):
        db = uniform_database(ell, n, domain_size=dom, seed=ell * 100 + n)
        query = builder(ell)
        expected = weight_signature(brute_force(db, query))
        got = weight_signature(yannakakis(db, query))
        assert got == expected

    def test_empty_result(self):
        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        assert yannakakis(db, path_query(2)) == []

    def test_counts_intermediate_tuples(self):
        db = uniform_database(2, 20, domain_size=3, seed=9)
        counter = OpCounter()
        results = yannakakis(db, path_query(2), counter=counter)
        # Semi-join reduction makes intermediates output-linear-ish:
        # every counted tuple is part of at least one result prefix.
        assert counter.intermediate_tuples >= len(results)

    def test_matches_tdp_batch(self):
        """Independent oracle agreement: Yannakakis vs T-DP enumeration."""
        from repro.enumeration.api import ranked_enumerate

        db = uniform_database(3, 30, domain_size=4, seed=77)
        query = path_query(3)
        yk = weight_signature(yannakakis(db, query))
        tdp_batch = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="batch")
        )
        assert yk == tdp_batch


class TestGenericJoin:
    def test_trie_structure(self):
        rel = Relation("R", 2, [(1, 2), (1, 3)], [5.0, 6.0])
        trie = build_trie(rel, [0, 1])
        assert set(trie) == {1}
        assert set(trie[1]) == {2, 3}
        assert trie[1][2] == [(0, 5.0)]

    def test_acyclic_agrees_with_brute_force(self):
        db = uniform_database(3, 25, domain_size=4, seed=11)
        query = path_query(3)
        expected = weight_signature(brute_force(db, query))
        got = weight_signature(
            (w, a) for w, a, _ in generic_join(db, query)
        )
        assert got == expected

    @pytest.mark.parametrize("ell", [3, 4, 5])
    def test_cycles_agree_with_brute_force(self, ell):
        db = uniform_database(ell, 18, domain_size=3, seed=ell)
        query = cycle_query(ell)
        expected = weight_signature(brute_force(db, query))
        got = weight_signature((w, a) for w, a, _ in generic_join(db, query))
        assert got == expected

    def test_worst_case_cycle_output(self):
        db = worst_case_cycle_database(4, 8, seed=1)
        results = generic_join(db, cycle_query(4))
        assert len(results) == 2 * 4 * 4

    def test_witness_ids_returned(self):
        db = uniform_database(2, 15, domain_size=3, seed=13)
        query = path_query(2)
        for weight, _assignment, witness in generic_join(db, query):
            total = sum(
                db[atom.relation_name].weights[tid]
                for atom, tid in zip(query.atoms, witness)
            )
            assert total == pytest.approx(weight)

    def test_custom_variable_order(self):
        db = uniform_database(2, 15, domain_size=3, seed=15)
        query = path_query(2)
        default = weight_signature((w, a) for w, a, _ in generic_join(db, query))
        reordered = generic_join(
            db, query, variable_order=["x3", "x1", "x2"]
        )
        # Assignments still follow query.variables regardless of order.
        assert weight_signature((w, a) for w, a, _ in reordered) == default

    def test_bad_variable_order_rejected(self):
        db = uniform_database(2, 5, domain_size=2, seed=1)
        with pytest.raises(ValueError):
            generic_join(db, path_query(2), variable_order=["x1"])

    def test_triangle_on_self_join(self):
        import random

        rng = random.Random(17)
        edges = Relation("E", 2)
        seen = set()
        for _ in range(25):
            t = (rng.randint(1, 5), rng.randint(1, 5))
            if t not in seen:
                seen.add(t)
                edges.add(t, rng.uniform(0, 10))
        db = Database([edges])
        query = cycle_query(3, relation="E")
        expected = weight_signature(brute_force(db, query))
        got = weight_signature((w, a) for w, a, _ in generic_join(db, query))
        assert got == expected


class TestRankJoin:
    def test_descending_order_and_completeness(self):
        db = uniform_database(3, 15, domain_size=3, seed=19)
        query = path_query(3)
        got = [(w, tuple(a[v] for v in query.variables))
               for w, a in rank_join_enumerate(db, query)]
        weights = [w for w, _ in got]
        assert weights == sorted(weights, reverse=True)
        expected = Counter(
            (round(w, 6), o) for w, o in brute_force(db, query)
        )
        assert Counter((round(w, 6), o) for w, o in got) == expected

    def test_top_result_on_i2_instance(self):
        """Fig 19: the top max-sum result combines light R,S with heavy T."""
        n = 8
        db = rank_join_hard_instance(n)
        query = parse_query("Q(a, b, c) :- R(a, b), S(b, c), T(c)")
        counter = OpCounter()
        stream = rank_join_enumerate(db, query, counter=counter)
        weight, assignment = next(stream)
        assert assignment["a"] == 0 and assignment["c"] == 0
        assert weight == 1.0 + 10.0 + 1000.0 * n
        # The pathological part: Rank-Join buffered (n-1)^2 R-S pairs.
        assert counter.intermediate_tuples >= (n - 1) ** 2

    def test_binary_join_small(self):
        r = Relation("R", 2, [(1, 2), (3, 2)], [10.0, 1.0])
        s = Relation("S", 2, [(2, 5)], [100.0])
        db = Database([r, s])
        query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
        got = list(rank_join_enumerate(db, query))
        assert [w for w, _ in got] == [110.0, 101.0]

    def test_empty_join(self):
        r = Relation("R", 2, [(1, 2)], [1.0])
        s = Relation("S", 2, [(9, 5)], [1.0])
        db = Database([r, s])
        query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
        assert list(rank_join_enumerate(db, query)) == []
