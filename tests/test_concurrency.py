"""Concurrency-safety regressions: engine caches and SQLite backends.

The serving layer multiplexes one engine (and often one ``.db`` file)
across threads and asyncio tasks.  These tests drive the two retrofitted
layers directly with real threads:

* the engine's plan/physical/stream LRU caches under concurrent
  ``prepare`` pressure past ``max_cached_plans`` (lock-guarded
  eviction must never corrupt the cache or lose a binding);
* ``SQLiteBackend``'s per-thread connections: concurrent lazy streams
  over one file, including two engine sessions enumerating from the
  same ``.db`` simultaneously.
"""

from __future__ import annotations

import itertools
import os
import threading

import pytest

from repro.data.backend import SQLiteBackend
from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.query.builders import path_query, star_query
from repro.serve.session import SessionManager


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


class Barrier2:
    """A tiny start-line: threads block until everyone arrived."""

    def __init__(self, parties: int):
        self._barrier = threading.Barrier(parties, timeout=30)

    def wait(self) -> None:
        self._barrier.wait()


# -- engine caches under concurrency -------------------------------------------


class TestEngineCacheConcurrency:
    def test_eviction_under_concurrent_prepare(self):
        """Two tasks prepare distinct queries past ``max_cached_plans``."""
        db = uniform_database(6, 12, domain_size=3, seed=31)
        engine = Engine(db, max_cached_plans=3)
        queries = [path_query(i) for i in range(2, 7)] + [
            star_query(i) for i in range(2, 7)
        ]
        barrier = Barrier2(2)
        errors: list[Exception] = []

        def worker(offset: int) -> None:
            try:
                barrier.wait()
                for _ in range(5):
                    for query in queries[offset::2]:
                        prepared = engine.prepare(query)
                        # Value equality, not identity: the sibling
                        # thread may evict the stream between the two
                        # calls, re-enumerating fresh (equal) results.
                        assert signature(prepared.top(2)) == signature(
                            prepared.top(2)
                        )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert engine.cached_plans() <= 3
        assert len(engine._physicals) <= 3
        assert len(engine._streams) <= 3
        assert engine.stats.evictions > 0
        # The caches still serve correct answers after the storm.
        assert signature(engine.prepare(path_query(2)).top(3)) == signature(
            Engine(db).prepare(path_query(2)).top(3)
        )

    def test_concurrent_prepare_same_query_binds_once(self):
        db = uniform_database(3, 30, domain_size=4, seed=32)
        engine = Engine(db)
        barrier = Barrier2(4)
        outputs: list[list] = []
        errors: list[Exception] = []

        def worker() -> None:
            try:
                barrier.wait()
                prepared = engine.prepare(path_query(3))
                outputs.append(signature(prepared.top(20)))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert engine.stats.binds == 1
        assert engine.stats.stream_misses == 1
        assert all(rows == outputs[0] for rows in outputs)

    def test_shared_cursor_partitions_stream_exactly_once(self):
        """Concurrent fetches on ONE cursor must partition the ranked
        stream into contiguous, exactly-once pages (no loss, no dupes)."""
        db = uniform_database(3, 40, domain_size=5, seed=35)
        engine = Engine(db)
        prepared = engine.prepare(path_query(3))
        total = 200
        # Generous baseline: racing workers may overshoot `total` by up
        # to one page each, and all of it must still be exactly-once.
        baseline = signature(prepared.top(total + 4 * 7))
        cursor = prepared.cursor()
        barrier = Barrier2(4)
        pages: list[list] = []
        errors: list[Exception] = []

        def worker() -> None:
            try:
                barrier.wait()
                while cursor.position < total:
                    page = cursor.fetch(7)
                    if not page:
                        break
                    pages.append(signature(page))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        flat = [row for page in pages for row in page]
        assert len(flat) >= total
        # Exactly once, no gaps: the multiset of served rows is exactly
        # the ranked prefix of the stream of the same length.
        assert sorted(flat) == sorted(baseline[: len(flat)])

    def test_shared_stream_extension_race(self):
        """Many threads pulling one stream see one consistent prefix."""
        db = uniform_database(3, 40, domain_size=5, seed=33)
        engine = Engine(db)
        prepared = engine.prepare(path_query(3))
        baseline = signature(itertools.islice(prepared.iter(), 120))
        barrier = Barrier2(6)
        errors: list[Exception] = []

        def worker(k: int) -> None:
            try:
                barrier.wait()
                assert signature(prepared.top(k)) == baseline[:k]
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(20 * (i + 1),))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert prepared.stream().produced == 120


# -- SQLite under concurrency --------------------------------------------------


@pytest.fixture
def sqlite_db_path(tmp_path) -> str:
    path = os.path.join(str(tmp_path), "data.db")
    database = uniform_database(3, 60, domain_size=5, seed=34)
    with SQLiteBackend(path) as backend:
        for relation in database:
            backend.ingest(relation)
    return path


class TestSQLiteConcurrency:
    def test_interleaved_lazy_streams_across_threads(self, sqlite_db_path):
        backend = SQLiteBackend(sqlite_db_path)
        try:
            expected = list(backend.iter_rows("R1"))
            barrier = Barrier2(4)
            errors: list[Exception] = []

            def worker() -> None:
                try:
                    barrier.wait()
                    # Interleave two lazy cursors within the thread while
                    # other threads do the same against the same file.
                    a = backend.iter_rows("R1")
                    b = backend.sorted_rows("R1")
                    rows, ranked = [], []
                    for row_a, row_b in zip(a, b):
                        rows.append(row_a)
                        ranked.append(row_b)
                    assert rows == expected
                    assert [w for _t, w in ranked] == sorted(
                        w for _t, w in expected
                    )
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
        finally:
            backend.close()

    def test_two_sessions_stream_same_db_concurrently(self, sqlite_db_path):
        """The ISSUE's regression: two serving sessions, one ``.db``."""
        backend = SQLiteBackend(sqlite_db_path)
        engine = Engine.from_backend(backend)
        baseline = {
            2: signature(engine.prepare(path_query(2)).iter()),
            3: signature(engine.prepare(path_query(3)).iter()),
        }
        engine.clear_caches()
        manager = SessionManager(engine, slice_size=8)
        _, c2 = manager.open_cursor(
            "s2", "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"
        )
        _, c3 = manager.open_cursor(
            "s3", "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"
        )
        barrier = Barrier2(2)
        collected: dict[str, list] = {}
        errors: list[Exception] = []

        def worker(session: str, cursor_id: str, arity: int) -> None:
            try:
                barrier.wait()
                rows = []
                while True:
                    outcome = manager.fetch(session, cursor_id, 16)
                    rows.extend(outcome.results)
                    if outcome.exhausted or not outcome.results:
                        break
                collected[session] = signature(rows)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("s2", c2, 2)),
            threading.Thread(target=worker, args=("s3", c3, 3)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert collected["s2"] == baseline[2]
        assert collected["s3"] == baseline[3]
        engine.close()

    def test_writer_and_reader_threads(self, sqlite_db_path):
        """WAL mode: a writer appending does not break lazy readers."""
        backend = SQLiteBackend(sqlite_db_path)
        try:
            before = backend.cardinality("R2")
            barrier = Barrier2(2)
            errors: list[Exception] = []

            def reader() -> None:
                try:
                    barrier.wait()
                    for _ in range(5):
                        rows = list(backend.iter_rows("R1"))
                        assert len(rows) >= 60
                except Exception as exc:
                    errors.append(exc)

            def writer() -> None:
                try:
                    barrier.wait()
                    for i in range(20):
                        backend.append("R2", (100 + i, 200 + i), float(i))
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader),
                threading.Thread(target=writer),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert backend.cardinality("R2") == before + 20
            assert backend.version("R2") >= 20
        finally:
            backend.close()

    def test_dead_thread_connections_are_reclaimed(self, sqlite_db_path):
        """Thread churn must not leak one sqlite handle per dead thread."""
        backend = SQLiteBackend(sqlite_db_path)
        try:
            for _ in range(10):
                thread = threading.Thread(
                    target=lambda: list(backend.iter_rows("R1"))
                )
                thread.start()
                thread.join(timeout=30)
            # Each new per-thread connection prunes its dead
            # predecessors, so the pool stays bounded (main thread's
            # connection + at most the last dead thread's) instead of
            # growing by one handle per exited thread.
            assert len(backend._connections) <= 2
        finally:
            backend.close()

    def test_memory_backend_stays_single_connection(self):
        backend = SQLiteBackend(":memory:")
        backend.create("R", 2)
        backend.append("R", (1, 2), 0.5)

        seen: list[int] = []

        def worker() -> None:
            seen.append(len(list(backend.iter_rows("R"))))

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=30)
        # A per-thread connection to ":memory:" would see an empty db.
        assert seen == [1]
        backend.close()
