"""Tests for the heap utilities and operation counters."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.util.counters import OpCounter
from repro.util.heaps import LazySortedList, heap_children, heapify_entries


class TestHeapifyEntries:
    def test_heap_property(self):
        entries = [(w, i) for i, w in enumerate([5.0, 1.0, 3.0, 2.0, 4.0])]
        heap = heapify_entries(list(entries))
        for pos in range(len(heap)):
            for child in heap_children(pos, len(heap)):
                assert heap[pos] <= heap[child]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1))
    def test_heap_property_random(self, weights):
        entries = [(w, i) for i, w in enumerate(weights)]
        heap = heapify_entries(entries)
        for pos in range(len(heap)):
            for child in heap_children(pos, len(heap)):
                assert heap[pos] <= heap[child]

    def test_every_position_reachable_from_root(self):
        """Take2 correctness: the heap-children relation spans all entries."""
        size = 17
        reached = {0}
        frontier = [0]
        while frontier:
            pos = frontier.pop()
            for child in heap_children(pos, size):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        assert reached == set(range(size))


class TestHeapChildren:
    def test_inner_node(self):
        assert heap_children(0, 7) == (1, 2)
        assert heap_children(1, 7) == (3, 4)

    def test_boundary(self):
        assert heap_children(2, 6) == (5,)
        assert heap_children(3, 6) == ()
        assert heap_children(0, 1) == ()


class TestLazySortedList:
    def test_prefetch_two(self):
        lazy = LazySortedList([(3, "c"), (1, "a"), (2, "b")])
        assert lazy.sorted_len() == 2
        assert lazy.get(0) == (1, "a")
        assert lazy.get(1) == (2, "b")

    def test_incremental_drain(self):
        entries = [(w, i) for i, w in enumerate([9, 4, 7, 1, 8, 2])]
        lazy = LazySortedList(entries)
        expected = sorted(entries)
        for i in range(len(entries)):
            assert lazy.get(i) == expected[i]
        assert lazy.get(len(entries)) is None

    def test_exhaustion_and_len(self):
        lazy = LazySortedList([(1, 0)])
        assert len(lazy) == 1
        assert lazy.get(0) == (1, 0)
        assert lazy.get(5) is None
        assert lazy.sorted_len() == 1

    def test_random_order_agreement(self):
        rng = random.Random(7)
        entries = [(rng.random(), i) for i in range(50)]
        lazy = LazySortedList(list(entries))
        expected = sorted(entries)
        # Access in a scattered pattern; results must be stable.
        for index in [10, 3, 30, 0, 49, 25, 25, 11]:
            assert lazy.get(index) == expected[index]


class TestOpCounter:
    def test_starts_at_zero(self):
        counter = OpCounter()
        assert counter.pq_push == 0
        assert counter.total_pq_ops() == 0

    def test_reset(self):
        counter = OpCounter()
        counter.pq_push += 5
        counter.results += 2
        counter.reset()
        assert counter.pq_push == 0
        assert counter.results == 0

    def test_as_dict_and_repr(self):
        counter = OpCounter()
        counter.pq_pop += 3
        snapshot = counter.as_dict()
        assert snapshot["pq_pop"] == 3
        assert "pq_pop=3" in repr(counter)

    def test_total_pq_ops(self):
        counter = OpCounter()
        counter.pq_push += 2
        counter.pq_pop += 3
        assert counter.total_pq_ops() == 5
