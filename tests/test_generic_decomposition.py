"""Generic hypertree decomposition tests (arbitrary cyclic CQs)."""

import random

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.generic import decompose_generic
from repro.enumeration.api import ranked_enumerate
from repro.joins.yannakakis import yannakakis
from repro.query.parser import parse_query
from tests.conftest import brute_force, weight_signature


def distinct_relation(name, n, domain, rng, arity=2):
    seen = {}
    for _ in range(n):
        t = tuple(rng.randint(1, domain) for _ in range(arity))
        if t not in seen:
            seen[t] = round(rng.uniform(0, 50), 3)
    return Relation(name, arity, list(seen.keys()), list(seen.values()))


@pytest.fixture
def rng():
    return random.Random(123)


class TestGHDStructure:
    def test_single_tree_task(self, rng):
        db = Database([distinct_relation(f"R{i}", 15, 4, rng) for i in (1, 2, 3)])
        query = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c), R3(c,a)")
        task = decompose_generic(db, query)
        assert task.query.is_acyclic()
        assert task.query.is_full()
        assert set(task.query.variables) == {"a", "b", "c"}

    def test_triangle_single_bag(self, rng):
        db = Database([distinct_relation(f"R{i}", 15, 4, rng) for i in (1, 2, 3)])
        query = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c), R3(c,a)")
        task = decompose_generic(db, query)
        assert len(task.database) == 1, "a triangle fits in one bag"

    def test_bag_weights_equal_witness_weights(self, rng):
        db = Database([distinct_relation(f"R{i}", 15, 4, rng) for i in (1, 2, 3)])
        query = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c), R3(c,a)")
        task = decompose_generic(db, query)
        rows = yannakakis(task.database, task.query)
        expected = weight_signature(brute_force(db, query))
        assert weight_signature(rows) == expected


class TestGHDEndToEnd:
    def test_chorded_square(self, rng):
        db = Database(
            [distinct_relation(f"R{i}", 14, 4, rng) for i in (1, 2, 3, 4, 5)]
        )
        query = parse_query(
            "Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(a,c)"
        )
        expected = weight_signature(brute_force(db, query))
        got = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="take2")
        )
        assert got == expected

    def test_k4_clique_query(self, rng):
        db = Database(
            [distinct_relation(f"R{i}", 12, 3, rng) for i in range(1, 7)]
        )
        query = parse_query(
            "Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(a,c), R6(b,d)"
        )
        expected = weight_signature(brute_force(db, query))
        for algorithm in ("take2", "recursive", "batch"):
            got = weight_signature(
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(db, query, algorithm=algorithm)
            )
            assert got == expected, algorithm

    def test_ternary_atoms_cyclic(self, rng):
        db = Database(
            [
                distinct_relation("R1", 20, 3, rng, arity=3),
                distinct_relation("R2", 20, 3, rng, arity=3),
                distinct_relation("R3", 20, 3, rng, arity=2),
            ]
        )
        query = parse_query("Q(a,b,c,d) :- R1(a,b,c), R2(b,c,d), R3(d,a)")
        expected = weight_signature(brute_force(db, query))
        got = weight_signature(
            (r.weight, r.output_tuple)
            for r in ranked_enumerate(db, query, algorithm="lazy")
        )
        assert got == expected

    def test_ranked_order(self, rng):
        db = Database(
            [distinct_relation(f"R{i}", 14, 4, rng) for i in (1, 2, 3, 4, 5)]
        )
        query = parse_query(
            "Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(b,d)"
        )
        weights = [
            r.weight for r in ranked_enumerate(db, query, algorithm="take2")
        ]
        assert weights == sorted(weights)

    def test_empty_output(self, rng):
        db = Database(
            [
                Relation("R1", 2, [(1, 2)], [0.0]),
                Relation("R2", 2, [(2, 3)], [0.0]),
                Relation("R3", 2, [(3, 9)], [0.0]),  # 9 never loops back
            ]
        )
        # Force the generic path by adding a chord making it non-simple.
        db.add(Relation("R4", 2, [(1, 3)], [0.0]))
        query = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c), R3(c,a), R4(a,c)")
        assert list(ranked_enumerate(db, query)) == []
