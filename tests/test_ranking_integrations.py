"""End-to-end tests for the non-default ranking functions (Section 6)."""

import pytest

from repro.data.database import Database
from repro.data.generators import fdb_lex_instance, uniform_database
from repro.data.relation import Relation
from repro.dp.builder import build_tdp_for_query
from repro.anyk.base import make_enumerator
from repro.enumeration.api import ranked_enumerate
from repro.query.builders import cycle_query, path_query
from repro.query.parser import parse_query
from repro.ranking.dioid import (
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    LexicographicDioid,
)
from repro.ranking.weights import attribute_weight_rewrite
from tests.conftest import brute_force


class TestMaxPlus:
    def test_heaviest_first(self):
        db = uniform_database(3, 25, domain_size=4, seed=1)
        query = path_query(3)
        expected = sorted(
            brute_force(db, query, dioid=MAX_PLUS), key=lambda x: -x[0]
        )
        for algorithm in ("take2", "recursive", "batch"):
            got = [
                (r.weight, r.output_tuple)
                for r in ranked_enumerate(db, query, dioid=MAX_PLUS,
                                          algorithm=algorithm)
            ]
            assert [w for w, _ in got] == pytest.approx(
                [w for w, _ in expected]
            ), algorithm

    def test_cyclic_max_plus(self):
        db = uniform_database(4, 16, domain_size=3, seed=2)
        query = cycle_query(4)
        expected = sorted(
            (w for w, _ in brute_force(db, query, dioid=MAX_PLUS)),
            reverse=True,
        )
        got = [
            r.weight
            for r in ranked_enumerate(db, query, dioid=MAX_PLUS,
                                      algorithm="lazy")
        ]
        assert got == pytest.approx(expected)


class TestMaxTimes:
    """Bag-semantics simulation (Section 6.4): weights as multiplicities."""

    def test_highest_multiplicity_first(self):
        r1 = Relation("R1", 2, [(1, 2), (3, 4)], [2.0, 10.0])
        r2 = Relation("R2", 2, [(2, 5), (4, 6)], [7.0, 1.0])
        db = Database([r1, r2])
        query = path_query(2)
        results = list(
            ranked_enumerate(db, query, dioid=MAX_TIMES, algorithm="take2")
        )
        assert results[0].weight == 14.0, "2*7 beats 10*1"
        assert [r.weight for r in results] == [14.0, 10.0]

    def test_monoid_fallback_on_star(self):
        # MAX_TIMES has no inverse: exercises the O(l^2) candidate path.
        db = uniform_database(3, 15, domain_size=3, seed=3)
        from repro.query.builders import star_query

        query = star_query(3)
        expected = sorted(
            (w for w, _ in brute_force(db, query, dioid=MAX_TIMES)),
            reverse=True,
        )
        got = [
            r.weight
            for r in ranked_enumerate(db, query, dioid=MAX_TIMES,
                                      algorithm="take2")
        ]
        assert got == pytest.approx(expected)


class TestBoolean:
    def test_ranked_enumeration_is_query_evaluation(self):
        # Section 6.4: with the Boolean dioid and weights True, ranked
        # enumeration returns exactly the satisfying assignments.
        db = uniform_database(3, 20, domain_size=3, seed=4)
        for name in ("R1", "R2", "R3"):
            db[name].weights = [True] * len(db[name])
        query = path_query(3)
        got = list(
            ranked_enumerate(db, query, dioid=BOOLEAN, algorithm="take2")
        )
        assert all(r.weight is True for r in got)
        expected = brute_force(db, query)  # tropical oracle, same outputs
        assert len(got) == len(expected)
        assert {r.output_tuple for r in got} == {o for _w, o in expected}

    def test_boolean_4cycle(self):
        from repro.data.generators import worst_case_cycle_database

        db = worst_case_cycle_database(4, 8, seed=5)
        for name in db.relations:
            db[name].weights = [True] * len(db[name])
        query = cycle_query(4)
        got = list(ranked_enumerate(db, query, dioid=BOOLEAN, algorithm="lazy"))
        assert len(got) == 2 * 4 * 4


class TestLexicographic:
    def test_fig18_order_a_then_c_then_b(self):
        """Fig 18: order 2-path results lexicographically by A -> C -> B."""
        n = 6
        db = fdb_lex_instance(n)
        query = path_query(2)  # R(x1,x2), S(x2,x3): A=x1, B=x2, C=x3
        lex = LexicographicDioid(3)

        def lift(atom, values, raw_weight):
            # A (x1) ranks first, then C (x3), then B (x2).
            if atom.relation_name == "R1":
                return (float(values[0]), 0.0, float(values[1]))
            return (0.0, float(values[1]), 0.0)

        tdp = None
        from repro.dp.builder import build_tdp
        from repro.query.jointree import build_join_tree

        db.relations["R1"] = db["R"].rename("R1")
        db.relations["R2"] = db["S"].rename("R2")
        tree = build_join_tree(query)
        tdp = build_tdp(db, tree, dioid=lex, lift=lift)
        enum = make_enumerator(tdp, "take2")
        outputs = [r.assignment for r in enum]
        assert len(outputs) == n * n
        keys = [(a["x1"], a["x3"], a["x2"]) for a in outputs]
        assert keys == sorted(keys), "lexicographic A -> C -> B order"

    def test_lexicographic_on_relations(self):
        """Section 2.2: lexicographic order on (R1-weight, R2-weight)."""
        r1 = Relation("R1", 2, [(1, 1), (2, 1)], [5.0, 1.0])
        r2 = Relation("R2", 2, [(1, 7), (1, 8)], [1.0, 2.0])
        db = Database([r1, r2])
        query = path_query(2)
        lex = LexicographicDioid(2)

        def lift(atom, values, raw_weight):
            position = 0 if atom.relation_name == "R1" else 1
            return lex.unit_vector(position, raw_weight)

        tdp = build_tdp_for_query(db, query, dioid=lex, lift=lift)
        enum = make_enumerator(tdp, "eager")
        got = [r.weight for r in enum]
        assert got == [(1.0, 1.0), (1.0, 2.0), (5.0, 1.0), (5.0, 2.0)]


class TestAttributeWeights:
    def test_rewrite_adds_unary_atoms(self):
        db = uniform_database(2, 15, domain_size=3, seed=6)
        query = path_query(2)
        new_db, new_query = attribute_weight_rewrite(
            db, query, {"x2": lambda v: 10.0 * v}
        )
        assert new_query.num_atoms == 3
        assert new_query.atoms[-1].variables == ("x2",)
        assert "__attr_weight_x2" in new_db

    def test_rewritten_weights_included(self):
        r1 = Relation("R1", 2, [(1, 2)], [1.0])
        r2 = Relation("R2", 2, [(2, 3)], [2.0])
        db = Database([r1, r2])
        query = path_query(2)
        new_db, new_query = attribute_weight_rewrite(
            db, query, {"x2": lambda v: 100.0 * v}
        )
        results = list(ranked_enumerate(new_db, new_query))
        assert len(results) == 1
        assert results[0].weight == pytest.approx(1.0 + 2.0 + 200.0)

    def test_unknown_variable_rejected(self):
        db = uniform_database(1, 5, domain_size=2, seed=7)
        with pytest.raises(ValueError, match="unknown query variable"):
            attribute_weight_rewrite(db, path_query(1), {"zz": lambda v: v})

    def test_example16_shape(self):
        """Example 16: weights on both attributes of a single relation."""
        rel = Relation("R", 2, [(1, 10), (2, 20)], [0.5, 0.25])
        db = Database([rel])
        query = parse_query("Q(x, y) :- R(x, y)")
        new_db, new_query = attribute_weight_rewrite(
            db, query, {"x": lambda v: float(v), "y": lambda v: float(v)}
        )
        results = list(ranked_enumerate(new_db, new_query))
        weights = sorted(r.weight for r in results)
        assert weights == pytest.approx([11.5, 22.25])
