"""The HTTP/WebSocket gateway: auth, throttling, metrics, bit-identity."""

from __future__ import annotations

import asyncio
import base64
import http.client
import json
import os
import socket as socketlib

import pytest

from repro.data.generators import uniform_database
from repro.engine import Engine
from repro.query.builders import path_query
from repro.serve import (
    AccessPolicy,
    AsyncServeClient,
    GatewayThread,
    HttpServeClient,
    ServeClient,
    ServeClientError,
    ServerThread,
)
from repro.serve.gateway import GatewayServer, ws_accept_key, ws_encode_frame

QUERY = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)"
TOKEN = "open-sesame"


def signature(results):
    return [(round(r.weight, 6), r.output_tuple) for r in results]


def wire_signature(rows):
    return [
        (
            round(row["weight"], 6),
            tuple(row["assignment"][v] for v in ("x1", "x2", "x3", "x4")),
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def engine():
    engine = Engine(uniform_database(3, 40, domain_size=5, seed=9))
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def baseline(engine):
    return signature(engine.prepare(path_query(3)).top(60))


@pytest.fixture(scope="module")
def gateway(engine):
    """An open (no auth, no limits) gateway."""
    with GatewayThread(engine, slice_size=8) as address:
        yield address


@pytest.fixture
def client(gateway):
    with HttpServeClient(*gateway) as c:
        yield c


# -- plumbing ------------------------------------------------------------------


class TestHttpPlumbing:
    def test_healthz(self, client):
        assert client.healthz() == {"ok": True, "status": "serving"}

    def test_unknown_route_is_404(self, gateway):
        conn = http.client.HTTPConnection(*gateway)
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        assert json.loads(response.read())["error"] == "bad_request"
        conn.close()

    def test_method_not_allowed(self, gateway):
        conn = http.client.HTTPConnection(*gateway)
        conn.request("POST", "/metrics", body=b"{}")
        response = conn.getresponse()
        assert response.status == 405
        assert response.getheader("Allow") == "GET"
        conn.close()

    def test_malformed_body_is_400(self, gateway):
        conn = http.client.HTTPConnection(*gateway)
        conn.request(
            "POST", "/v1/prepare", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        conn.close()

    def test_keep_alive_serves_many_requests(self, client):
        for _ in range(5):
            assert client.healthz()["ok"]

    def test_unknown_session_maps_to_404(self, gateway):
        conn = http.client.HTTPConnection(*gateway)
        conn.request(
            "POST", "/v1/fetch",
            body=json.dumps(
                {"session": "ghost", "cursor": "c0", "n": 1}
            ).encode(),
        )
        response = conn.getresponse()
        assert response.status == 404
        assert json.loads(response.read())["error"] == "unknown_session"
        conn.close()

    def test_boolean_shards_rejected_over_http(self, client):
        """The shared OpDispatcher validation covers the HTTP path too."""
        with pytest.raises(ServeClientError, match="bad_request"):
            client.prepare("boolh", QUERY, shards=True)

    def test_boolean_fetch_size_rejected_over_http(self, client):
        cursor = client.prepare("boolh", QUERY)["cursor"]
        with pytest.raises(ServeClientError, match="bad_request"):
            client.fetch("boolh", cursor, n=True)


# -- pagination bit-identity ---------------------------------------------------


class TestHttpPagination:
    def test_http_prefix_matches_engine(self, client, baseline):
        cursor = client.prepare("httpage", QUERY)["cursor"]
        rows: list[dict] = []
        for _ in range(6):
            page = client.fetch("httpage", cursor, 10)
            rows.extend(page.results)
        assert wire_signature(rows) == baseline
        client.close_session("httpage")

    def test_http_tcp_and_client_paths_bit_identical(
        self, engine, gateway, baseline
    ):
        """The acceptance criterion: paginated results over HTTP are
        bit-identical to the TCP path and the sync ServeClient."""
        with ServerThread(engine, slice_size=8) as tcp_address:
            with ServeClient(*tcp_address) as tcp:
                cursor = tcp.prepare("xport-tcp", QUERY)["cursor"]
                tcp_rows = []
                while len(tcp_rows) < 60:
                    tcp_rows.extend(
                        tcp.fetch("xport-tcp", cursor, 10).results
                    )
        with HttpServeClient(*gateway) as http_client:
            cursor = http_client.prepare("xport-http", QUERY)["cursor"]
            http_rows = []
            while len(http_rows) < 60:
                http_rows.extend(
                    http_client.fetch("xport-http", cursor, 10).results
                )
        assert wire_signature(http_rows[:60]) == baseline
        assert http_rows[:60] == tcp_rows[:60]  # full JSON payload equality

    def test_pagination_is_stateful_and_exhausts(self, engine, client):
        total = len(list(engine.prepare(path_query(2)).iter()))
        cursor = client.prepare(
            "httpdrain", "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"
        )["cursor"]
        rows = client.fetch_all("httpdrain", cursor, page_size=64)
        assert len(rows) == total
        page = client.fetch("httpdrain", cursor, 5)
        assert page.served == 0
        assert page.exhausted

    def test_explain_and_stats_over_http(self, client):
        cursor = client.prepare("httpex", QUERY)["cursor"]
        assert "strategy: acyclic-tdp" in client.explain("httpex", cursor)
        stats = client.stats()
        assert "engine" in stats and "scheduler" in stats


# -- auth ----------------------------------------------------------------------


class TestAuth:
    @pytest.fixture(scope="class")
    def guarded(self, engine):
        policy = AccessPolicy(auth_token=TOKEN)
        with GatewayThread(engine, policy=policy) as address:
            yield address

    def test_missing_token_is_401(self, guarded):
        conn = http.client.HTTPConnection(*guarded)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 401
        assert json.loads(response.read())["error"] == "unauthorized"
        conn.close()

    def test_wrong_token_is_401(self, guarded):
        with pytest.raises(ServeClientError, match="unauthorized"):
            HttpServeClient(*guarded, token="wrong").prepare("a", QUERY)

    def test_bearer_header_grants_access(self, guarded):
        with HttpServeClient(*guarded, token=TOKEN) as c:
            response = c.prepare("authed", QUERY)
            assert response["ok"]
            page = c.fetch("authed", response["cursor"], 3)
            assert page.served == 3

    def test_query_param_token_grants_access(self, guarded):
        conn = http.client.HTTPConnection(*guarded)
        conn.request("GET", f"/v1/stats?token={TOKEN}")
        response = conn.getresponse()
        assert response.status == 200
        conn.close()

    def test_healthz_needs_no_token(self, guarded):
        conn = http.client.HTTPConnection(*guarded)
        conn.request("GET", "/healthz")
        assert conn.getresponse().status == 200
        conn.close()


# -- rate limiting -------------------------------------------------------------


class TestThrottling:
    def test_429_with_retry_after_and_no_scheduler_slice(self, engine):
        clock = [0.0]  # frozen: the bucket never refills on its own
        policy = AccessPolicy(rate_limit=1.0, burst=3, clock=lambda: clock[0])
        thread = GatewayThread(engine, policy=policy)
        address = thread.start()
        try:
            manager = thread.server.manager
            with HttpServeClient(*address) as c:
                cursor = c.prepare("burst", QUERY)["cursor"]
                assert c.fetch("burst", cursor, 5).served == 5
                assert c.stats()["session_count"] >= 1
                # Bucket (burst=3) is now empty: the edge must reject
                # without touching the cooperative scheduler.
                slices_before = manager.scheduler.slices
                conn = http.client.HTTPConnection(*address)
                conn.request(
                    "POST", "/v1/fetch",
                    body=json.dumps(
                        {"session": "burst", "cursor": cursor, "n": 5}
                    ).encode(),
                )
                response = conn.getresponse()
                assert response.status == 429
                payload = json.loads(response.read())
                assert payload["error"] == "throttled"
                assert int(response.getheader("Retry-After")) >= 1
                conn.close()
                assert manager.scheduler.slices == slices_before
                assert policy.throttled >= 1
                # Refill restores service.
                clock[0] += 10.0
                assert c.fetch("burst", cursor, 5).served == 5
        finally:
            thread.stop()

    def test_healthz_is_never_throttled(self, engine):
        policy = AccessPolicy(rate_limit=1.0, burst=1, clock=lambda: 0.0)
        with GatewayThread(engine, policy=policy) as address:
            with HttpServeClient(*address) as c:
                c.stats()  # consumes the only token
                for _ in range(3):
                    assert c.healthz()["ok"]


# -- metrics -------------------------------------------------------------------


class TestMetrics:
    def test_metrics_shape(self, engine, client):
        cursor = client.prepare("metrics", QUERY)["cursor"]
        client.fetch("metrics", cursor, 5)
        metrics = client.metrics()
        assert metrics["ok"] is True
        gateway = metrics["gateway"]
        assert gateway["http_requests"] >= 2
        assert {"ws_connections", "ws_messages", "dispatched"} <= set(gateway)
        for key in ("admitted", "denied_auth", "throttled", "rate_limit"):
            assert key in metrics["policy"]
        fetch_latency = metrics["latency"]["fetch"]
        assert fetch_latency["count"] >= 1
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "total"):
            assert key in fetch_latency
        assert fetch_latency["p50_ms"] <= fetch_latency["p99_ms"]
        assert metrics["sessions"]["session_count"] >= 1
        # Engine cache counters ride along (stream/core observability).
        engine_stats = metrics["engine"]
        for key in ("stream_hits", "stream_misses", "core_hits", "binds"):
            assert key in engine_stats
        assert metrics["scheduler"]["slices"] >= 1

    def test_latency_window_fills_with_fetches(self, engine):
        with GatewayThread(engine) as address:
            with HttpServeClient(*address) as c:
                cursor = c.prepare("lat", QUERY)["cursor"]
                before = c.metrics()["latency"]["fetch"]["total"]
                for _ in range(4):
                    c.fetch("lat", cursor, 2)
                after = c.metrics()["latency"]["fetch"]["total"]
        assert after == before + 4


# -- websocket -----------------------------------------------------------------


class _SyncWsClient:
    """A minimal blocking WebSocket client for tests (RFC 6455 subset)."""

    def __init__(self, host: str, port: int, token: str | None = None):
        self._sock = socketlib.create_connection((host, port), timeout=30)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        target = "/v1/ws" + (f"?token={token}" if token else "")
        self._sock.sendall(
            (
                f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: Upgrade\r\nUpgrade: websocket\r\n"
                f"Sec-WebSocket-Key: {key}\r\n\r\n"
            ).encode("latin-1")
        )
        header = b""
        while b"\r\n\r\n" not in header:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("no handshake response")
            header += chunk
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
        self.status = int(status_line.split()[1])
        if self.status == 101:
            assert ws_accept_key(key).encode("ascii") in header
        self._file = self._sock.makefile("rb")

    def send(self, message: dict) -> None:
        payload = json.dumps(message).encode("utf-8")
        mask = os.urandom(4)
        frame = bytearray([0x81])
        if len(payload) < 126:
            frame.append(0x80 | len(payload))
        else:
            frame.append(0x80 | 126)
            frame += len(payload).to_bytes(2, "big")
        frame += mask
        frame += bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        self._sock.sendall(bytes(frame))

    def recv(self) -> dict:
        head = self._file.read(2)
        length = head[1] & 0x7F
        if length == 126:
            length = int.from_bytes(self._file.read(2), "big")
        elif length == 127:
            length = int.from_bytes(self._file.read(8), "big")
        return json.loads(self._file.read(length))

    def close(self) -> None:
        self._file.close()
        self._sock.close()


class TestWebSocket:
    def test_ws_round_trip_bit_identical(self, gateway, baseline):
        ws = _SyncWsClient(*gateway)
        assert ws.status == 101
        ws.send({"op": "ping"})
        assert ws.recv()["ok"]
        ws.send({"op": "prepare", "session": "wss", "query": QUERY})
        cursor = ws.recv()["cursor"]
        rows: list[dict] = []
        while len(rows) < 60:
            ws.send(
                {"op": "fetch", "session": "wss", "cursor": cursor, "n": 12}
            )
            while True:
                message = ws.recv()
                if "result" in message:
                    rows.append(message["result"])
                    continue
                assert message["ok"], message
                break
        assert wire_signature(rows[:60]) == baseline
        ws.close()

    def test_ws_frame_helpers_round_trip(self):
        frame = ws_encode_frame(b"hello")
        assert frame[0] == 0x81  # FIN + text
        assert frame[1] == 5  # unmasked, length 5
        assert frame[2:] == b"hello"

    def test_ws_requires_auth_at_upgrade(self, engine):
        policy = AccessPolicy(auth_token=TOKEN)
        with GatewayThread(engine, policy=policy) as address:
            denied = _SyncWsClient(*address)
            assert denied.status == 401
            denied._sock.close()
            granted = _SyncWsClient(*address, token=TOKEN)
            assert granted.status == 101
            granted.send({"op": "ping"})
            assert granted.recv()["ok"]
            granted.close()

    def test_ws_bad_json_frame_is_recoverable(self, gateway):
        ws = _SyncWsClient(*gateway)
        payload = b"{broken"
        mask = os.urandom(4)
        frame = bytearray([0x81, 0x80 | len(payload)])
        frame += mask
        frame += bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        ws._sock.sendall(bytes(frame))
        message = ws.recv()
        assert message["ok"] is False
        assert message["error"] == "bad_request"
        ws.send({"op": "ping"})
        assert ws.recv()["ok"]
        ws.close()


# -- the async client ----------------------------------------------------------


class TestAsyncServeClient:
    def test_async_client_matches_baseline(self, engine, baseline):
        with ServerThread(engine, slice_size=8) as address:
            async def run() -> list[dict]:
                async with AsyncServeClient(*address) as client:
                    assert await client.ping()
                    response = await client.prepare("async", QUERY)
                    rows: list[dict] = []
                    while len(rows) < 60:
                        page = await client.fetch(
                            "async", response["cursor"], 15
                        )
                        rows.extend(page.results)
                    await client.close_session("async")
                    return rows

            rows = asyncio.run(run())
        assert wire_signature(rows[:60]) == baseline

    def test_async_client_concurrent_sessions(self, engine, baseline):
        with ServerThread(engine, slice_size=8) as address:
            async def one(name: str) -> list[dict]:
                async with AsyncServeClient(*address) as client:
                    cursor = (await client.prepare(name, QUERY))["cursor"]
                    rows: list[dict] = []
                    while len(rows) < 40:
                        page = await client.fetch(name, cursor, 10)
                        rows.extend(page.results)
                    return rows

            async def run():
                return await asyncio.gather(
                    *(one(f"aio-{i}") for i in range(4))
                )

            outputs = asyncio.run(run())
        for rows in outputs:
            assert wire_signature(rows[:40]) == baseline[:40]

    def test_async_client_token(self, engine):
        policy = AccessPolicy(auth_token=TOKEN)
        with ServerThread(engine, policy=policy) as address:
            async def run():
                async with AsyncServeClient(*address) as anonymous:
                    with pytest.raises(ServeClientError, match="unauthorized"):
                        await anonymous.prepare("locked", QUERY)
                async with AsyncServeClient(*address, token=TOKEN) as client:
                    return (await client.prepare("granted", QUERY))["ok"]

            assert asyncio.run(run())


# -- shared manager across transports ------------------------------------------


class TestSharedManager:
    def test_gateway_shares_tcp_server_sessions(self, engine):
        """`repro serve --http-port` wires both transports to one
        SessionManager: a session opened over TCP pages over HTTP."""
        from repro.serve.server import ServeServer

        thread = ServerThread(engine, slice_size=8)
        address = thread.start()

        class SharedGatewayThread(GatewayThread):
            server_class = staticmethod(
                lambda engine, **options: GatewayServer(
                    engine, manager=thread.server.manager, **options
                )
            )

        gateway_thread = SharedGatewayThread(engine)
        gateway_address = gateway_thread.start()
        try:
            with ServeClient(*address) as tcp:
                cursor = tcp.prepare("shared-x", QUERY)["cursor"]
                first = tcp.fetch("shared-x", cursor, 10)
            with HttpServeClient(*gateway_address) as via_http:
                second = via_http.fetch("shared-x", cursor, 10)
            assert first.position == 10
            assert second.position == 20
        finally:
            gateway_thread.stop()
            thread.stop()

    def test_gateway_requires_engine_or_manager(self):
        with pytest.raises(ValueError, match="engine or a manager"):
            GatewayServer()


class TestServeCLIGatewayFlags:
    def test_parser_accepts_gateway_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "data/", "--http-port", "8080",
                "--auth-token", "t0k", "--rate-limit", "50",
                "--burst", "100", "--max-frame", "65536",
            ]
        )
        assert args.http_port == 8080
        assert args.auth_token == "t0k"
        assert args.rate_limit == 50.0
        assert args.burst == 100.0
        assert args.max_frame == 65536

    def test_gateway_defaults_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "data/"])
        assert args.http_port is None
        assert args.auth_token is None
        assert args.rate_limit is None
