"""Tests for the explain facility and the command-line interface."""

import pytest

from repro.cli import main
from repro.data.database import Database
from repro.data.generators import uniform_database, worst_case_cycle_database
from repro.data.io import save_database
from repro.data.relation import Relation
from repro.enumeration.explain import explain
from repro.query.builders import cycle_query, path_query, star_query
from repro.query.parser import parse_query


class TestExplain:
    def test_acyclic_plan(self):
        db = uniform_database(3, 20, domain_size=3, seed=1)
        report = explain(db, path_query(3))
        assert "acyclic -> join tree -> T-DP" in report
        assert "alive states" in report
        assert "best weight" in report
        assert "n = 20" in report

    def test_star_tree_shape(self):
        db = uniform_database(3, 20, domain_size=3, seed=2)
        report = explain(db, star_query(3))
        assert report.count("join on x1") == 2

    def test_cycle_plan(self):
        db = worst_case_cycle_database(4, 12, seed=3)
        report = explain(db, cycle_query(4))
        assert "heavy/light decomposition" in report
        assert "UT-DP union" in report
        assert "member" in report

    def test_generic_plan(self):
        rels = [
            Relation(f"R{i}", 2, [(1, 2), (2, 1)], [0.0, 0.0])
            for i in (1, 2, 3, 4, 5)
        ]
        db = Database(rels)
        q = parse_query("Q(a,b,c,d) :- R1(a,b), R2(b,c), R3(c,d), R4(d,a), R5(a,c)")
        report = explain(db, q)
        assert "generic hypertree decomposition" in report

    def test_projection_note(self):
        db = uniform_database(2, 10, domain_size=2, seed=4)
        q = parse_query("Q(x1) :- R1(x1, x2), R2(x2, x3)")
        report = explain(db, q)
        assert "projection query" in report

    def test_empty_output_flagged(self):
        db = Database(
            [Relation("R1", 2, [(1, 1)], [0]), Relation("R2", 2, [(2, 2)], [0])]
        )
        report = explain(db, path_query(2))
        assert "EMPTY" in report


@pytest.fixture
def csv_dir(tmp_path):
    db = uniform_database(2, 30, domain_size=4, seed=5)
    directory = tmp_path / "data"
    save_database(db, str(directory))
    return str(directory)


class TestCLI:
    def test_query_command(self, csv_dir, capsys):
        code = main(
            ["query", csv_dir, "Q(x1,x2,x3) :- R1(x1,x2), R2(x2,x3)", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("weight=") == 3
        assert "#1" in out

    def test_query_all_results(self, csv_dir, capsys):
        code = main(
            ["query", csv_dir, "Q(x1) :- R1(x1, x2)", "--top", "0",
             "--projection", "all_weight"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("weight=") == 30

    def test_query_with_constant(self, csv_dir, capsys):
        code = main(["query", csv_dir, "Q(x1) :- R1(x1, 2)", "--top", "5"])
        assert code == 0

    def test_query_max_plus(self, csv_dir, capsys):
        main(
            ["query", csv_dir, "R1(x1,x2), R2(x2,x3)", "--dioid", "max-plus",
             "--top", "2"]
        )
        out = capsys.readouterr().out
        weights = [
            float(line.split("weight=")[1].split()[0])
            for line in out.strip().splitlines()
        ]
        assert weights == sorted(weights, reverse=True)

    def test_query_witness_flag(self, csv_dir, capsys):
        main(
            ["query", csv_dir, "R1(x1,x2), R2(x2,x3)", "--top", "1",
             "--witness"]
        )
        assert "witness=" in capsys.readouterr().out

    def test_explain_command(self, csv_dir, capsys):
        code = main(["explain", csv_dir, "R1(x1,x2), R2(x2,x3)"])
        assert code == 0
        assert "plan:" in capsys.readouterr().out

    def test_generate_and_query_round_trip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "gen")
        code = main(
            ["generate", "uniform", out_dir, "--relations", "2",
             "--tuples", "50", "--seed", "9"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["query", out_dir, "R1(a,b), R2(b,c)", "--top", "2"])
        assert code == 0
        assert "weight=" in capsys.readouterr().out

    def test_generate_graph_kinds(self, tmp_path, capsys):
        for kind in ("bitcoin-like", "twitter-like", "cycle-worst-case"):
            out_dir = str(tmp_path / kind)
            code = main(
                ["generate", kind, out_dir, "--tuples", "120", "--seed", "1"]
            )
            assert code == 0

    def test_empty_result_message(self, tmp_path, capsys):
        db = Database(
            [Relation("R", 2, [(1, 1)], [0]), Relation("S", 2, [(2, 2)], [0])]
        )
        directory = str(tmp_path / "e")
        save_database(db, directory)
        main(["query", directory, "R(a,b), S(b,c)"])
        assert "(no results)" in capsys.readouterr().out
